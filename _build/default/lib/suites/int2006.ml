(* SpecINT2006-shaped non-numeric kernels. Same serial character as cint2000
   with the two shapes the paper calls out: 462_libquantum's massively
   DOALL-parallel amplitude loops (the tallest bar in Figure 4) and
   456_hmmer's high-coverage parallel inner DP rows. *)

let perlbench =
  Defs.mk ~name:"400_perlbench" ~category:Defs.Int2006
    ~descr:"bytecode interpreter: data-dependent pc and accumulator chains, \
            variable store updated in place — the serial interpreter shape"
    {src|
fn main() -> int {
  var proglen: int = 256;
  var opcode: int[] = new int[proglen];
  var operand: int[] = new int[proglen];
  var store: int[] = new int[64];
  var s: int = 11;
  for (var i: int = 0; i < proglen; i = i + 1) {
    s = lcg_next(s);
    opcode[i] = lcg_pick(s, 6);
    s = lcg_next(s);
    operand[i] = lcg_pick(s, 64);
  }
  var pc: int = 0;
  var acc: int = 1;
  var steps: int = 0;
  var limit: int = 40000;
  // the dispatch loop: pc and acc are frequent, data-dependent register
  // LCDs; the variable store carries memory LCDs between ops
  while (steps < limit) {
    var op: int = opcode[pc];
    var arg: int = operand[pc];
    pc = pc + 1;
    if (op == 0) {
      acc = (acc + arg) & 65535;
    } else { if (op == 1) {
      acc = (acc ^ store[arg]) & 65535;
    } else { if (op == 2) {
      store[arg] = acc;
    } else { if (op == 3) {
      store[arg] = (store[arg] + 1) & 65535;
    } else { if (op == 4) {
      if ((acc & 1) == 0) { pc = arg % proglen; }
    } else {
      acc = (acc * 3 + 1) & 65535;
    } } } } }
    if (pc >= proglen) { pc = 0; }
    steps = steps + 1;
  }
  var check: int = acc;
  for (var i: int = 0; i < 64; i = i + 1) { check = check + store[i] * (i & 3); }
  print_int(check);
  return 0;
}
|src}

let bzip2 =
  Defs.mk ~name:"401_bzip2" ~category:Defs.Int2006
    ~descr:"BWT-style rotation sort: selection pass with comparison helper \
            calls; rank array written as discovered"
    {src|
global buf: int[];
global buflen: int;

fn rot_compare(a: int, b: int) -> int {
  // lexicographic compare of rotations a and b, bounded probe
  for (var k: int = 0; k < 24; k = k + 1) {
    var ca: int = buf[(a + k) % buflen];
    var cb: int = buf[(b + k) % buflen];
    if (ca != cb) { return ca - cb; }
  }
  return 0;
}

fn main() -> int {
  buflen = 220;
  buf = new int[buflen];
  var s: int = 13;
  for (var i: int = 0; i < buflen; i = i + 1) {
    s = lcg_next(s);
    buf[i] = (s >> 4) & 3;
  }
  var order: int[] = new int[buflen];
  var used: int[] = new int[buflen];
  // selection sort of rotations: the outer loop consumes used[] written by
  // every earlier iteration; the inner min-scan calls the pure helper
  for (var r: int = 0; r < buflen; r = r + 1) {
    var best: int = -1;
    for (var c: int = 0; c < buflen; c = c + 1) {
      if (used[c] == 0) {
        if (best < 0) {
          best = c;
        } else {
          if (rot_compare(c, best) < 0) { best = c; }
        }
      }
    }
    order[r] = best;
    used[best] = 1;
  }
  var check: int = 0;
  for (var r: int = 0; r < buflen; r = r + 1) {
    check = check + buf[(order[r] + buflen - 1) % buflen] * (r & 7);
  }
  print_int(check);
  return 0;
}
|src}

let gcc06 =
  Defs.mk ~name:"403_gcc" ~category:Defs.Int2006
    ~descr:"dataflow bitvector fixpoint: per-block IN/OUT words, frequent \
            memory LCDs across the sweep"
    {src|
fn main() -> int {
  var blocks: int = 400;
  var inw: int[] = new int[blocks];
  var outw: int[] = new int[blocks];
  var gen: int[] = new int[blocks];
  var kill: int[] = new int[blocks];
  var pred1: int[] = new int[blocks];
  var pred2: int[] = new int[blocks];
  var s: int = 19;
  for (var b: int = 0; b < blocks; b = b + 1) {
    s = lcg_next(s);
    gen[b] = (s >> 8) & 65535;
    s = lcg_next(s);
    kill[b] = (s >> 8) & 65535;
    s = lcg_next(s);
    pred1[b] = lcg_pick(s, blocks);
    s = lcg_next(s);
    pred2[b] = lcg_pick(s, blocks);
  }
  var changed: int = 1;
  var sweeps: int = 0;
  while (changed == 1 && sweeps < 10) {
    changed = 0;
    // block b meets its predecessors' OUT, possibly updated this sweep
    for (var b: int = 0; b < blocks; b = b + 1) {
      var inn: int = outw[pred1[b]] | outw[pred2[b]];
      var o: int = (inn & (65535 ^ kill[b])) | gen[b];
      if (o != outw[b]) {
        outw[b] = o;
        inw[b] = inn;
        changed = 1;
      }
    }
    sweeps = sweeps + 1;
  }
  var check: int = sweeps;
  for (var b: int = 0; b < blocks; b = b + 1) { check = check + (outw[b] & (b | 1)); }
  print_int(check);
  return 0;
}
|src}

let mcf06 =
  Defs.mk ~name:"429_mcf" ~category:Defs.Int2006
    ~descr:"arc pricing over a network: infrequent improving writes \
            (PDOALL beats HELIX here in the paper's Figure 4)"
    {src|
fn main() -> int {
  var nodes: int = 400;
  var arcs: int = 2600;
  var tail: int[] = new int[arcs];
  var head: int[] = new int[arcs];
  var cost: int[] = new int[arcs];
  var potential: int[] = new int[nodes];
  var s: int = 23;
  for (var a: int = 0; a < arcs; a = a + 1) {
    s = lcg_next(s);
    tail[a] = lcg_pick(s, nodes);
    s = lcg_next(s);
    head[a] = lcg_pick(s, nodes);
    s = lcg_next(s);
    cost[a] = 1 + lcg_pick(s, 30);
  }
  for (var i: int = 0; i < nodes; i = i + 1) { potential[i] = 500 + (i % 50); }
  var improving: int = 0;
  // pricing passes: reduced cost mostly non-negative, so potential[] writes
  // (the cross-iteration conflicts) are rare
  for (var pass: int = 0; pass < 5; pass = pass + 1) {
    for (var a: int = 0; a < arcs; a = a + 1) {
      var red: int = cost[a] + potential[tail[a]] - potential[head[a]];
      if (red < -35) {
        potential[head[a]] = potential[head[a]] - 1;
        improving = improving + 1;
      }
    }
  }
  var check: int = improving * 7;
  for (var i: int = 0; i < nodes; i = i + 1) { check = check + potential[i]; }
  print_int(check);
  return 0;
}
|src}

let gobmk =
  Defs.mk ~name:"445_gobmk" ~category:Defs.Int2006
    ~descr:"Go board flood fill: BFS queue cursors (stride-predictable), \
            board marks with conflicts early in each fill"
    {src|
fn main() -> int {
  var dim: int = 40;
  var board: int[] = new int[dim * dim];
  var mark: int[] = new int[dim * dim];
  var queue: int[] = new int[dim * dim + 8];
  var s: int = 31;
  for (var i: int = 0; i < dim * dim; i = i + 1) {
    s = lcg_next(s);
    if (((s >> 16) & 7) < 3) { board[i] = 1; }
  }
  var filled: int = 0;
  for (var start: int = 0; start < dim * dim; start = start + 97) {
    if (board[start] == 0 && mark[start] == 0) {
      var h: int = 0;
      var t: int = 0;
      queue[0] = start;
      mark[start] = 1;
      t = 1;
      while (h < t) {
        var c: int = queue[h];
        h = h + 1;
        filled = filled + 1;
        var x: int = c % dim;
        if (x + 1 < dim && board[c + 1] == 0 && mark[c + 1] == 0) {
          mark[c + 1] = 1; queue[t] = c + 1; t = t + 1;
        }
        if (x > 0 && board[c - 1] == 0 && mark[c - 1] == 0) {
          mark[c - 1] = 1; queue[t] = c - 1; t = t + 1;
        }
        if (c + dim < dim * dim && board[c + dim] == 0 && mark[c + dim] == 0) {
          mark[c + dim] = 1; queue[t] = c + dim; t = t + 1;
        }
        if (c >= dim && board[c - dim] == 0 && mark[c - dim] == 0) {
          mark[c - dim] = 1; queue[t] = c - dim; t = t + 1;
        }
      }
    }
  }
  print_int(filled);
  return 0;
}
|src}

let hmmer =
  Defs.mk ~name:"456_hmmer" ~category:Defs.Int2006
    ~descr:"profile-HMM Viterbi DP: serial rows, wide parallel inner loop \
            (the high-coverage inner-loop shape the paper highlights)"
    {src|
fn main() -> int {
  var m: int = 120;  // model length
  var n: int = 160;  // sequence length
  var vrow: int[] = new int[m + 1];
  var vprev: int[] = new int[m + 1];
  var match_sc: int[] = new int[m * 4];
  var s: int = 37;
  for (var i: int = 0; i < m * 4; i = i + 1) {
    s = lcg_next(s);
    match_sc[i] = lcg_pick(s, 13) - 4;
  }
  var seq: int[] = new int[n];
  for (var i: int = 0; i < n; i = i + 1) {
    s = lcg_next(s);
    seq[i] = (s >> 16) & 3;
  }
  var best: int = -1000000;
  for (var i: int = 0; i < n; i = i + 1) {
    var c: int = seq[i];
    // inner DP cells read only the previous row: independent of each other
    for (var k: int = 1; k <= m; k = k + 1) {
      var diag: int = vprev[k - 1];
      var up: int = vprev[k] - 3;
      var v: int = imax(diag, up) + match_sc[(k - 1) * 4 + c];
      vrow[k] = v;
    }
    for (var k: int = 1; k <= m; k = k + 1) {
      vprev[k] = vrow[k];
      best = imax(best, vrow[k]);
    }
  }
  print_int(best);
  return 0;
}
|src}

let sjeng =
  Defs.mk ~name:"458_sjeng" ~category:Defs.Int2006
    ~descr:"chess search with transposition table: recursion in the move \
            loop plus in-place table updates"
    {src|
global ttable: int[];
global tthits: int;

fn probe(key: int) -> int {
  var slot: int = key & 1023;
  if (ttable[slot] == key) {
    tthits = tthits + 1;
    return 1;
  }
  ttable[slot] = key;
  return 0;
}

fn search(board: int, depth: int) -> int {
  if (depth == 0) {
    return (board ^ (board >> 7)) & 63;
  }
  var key: int = (board * 2654435761) & 1073741823;
  if (probe(key) == 1) {
    return (key & 31) - 16;
  }
  var best: int = -1000000;
  for (var mv: int = 0; mv < 4; mv = mv + 1) {
    var nb: int = (board * 13 + mv * 101 + 7) & 1073741823;
    best = imax(best, 0 - search(nb, depth - 1));
  }
  return best;
}

fn main() -> int {
  ttable = new int[1024];
  tthits = 0;
  var total: int = 0;
  for (var root: int = 0; root < 16; root = root + 1) {
    total = total + search(root * 7919 + 3, 6);
  }
  print_int(total * 10000 + tthits % 10000);
  return 0;
}
|src}

let libquantum =
  Defs.mk ~name:"462_libquantum" ~category:Defs.Int2006
    ~descr:"quantum gate application over the amplitude array: the massively \
            DOALL-parallel outlier of the paper's Figure 4"
    {src|
fn main() -> int {
  var qubits: int = 12;
  var n: int = 4096; // 2^qubits amplitudes (fixed-point)
  var re: int[] = new int[n];
  var im: int[] = new int[n];
  var renorm: int[] = new int[1];
  var thresh: int = 11000000;
  re[0] = 16777216;
  // a circuit of NOT / controlled-phase gates: every gate visits all
  // amplitudes independently
  for (var gate: int = 0; gate < 24; gate = gate + 1) {
    var target: int = gate % qubits;
    var bit: int = 1 << target;
    thresh = thresh - thresh / 5;
    if ((gate & 1) == 0) {
      // Hadamard butterfly on pairs: spreads amplitude across the register
      for (var i: int = 0; i < n; i = i + 1) {
        if ((i & bit) == 0) {
          var j: int = i | bit;
          var sr: int = (re[i] + re[j]) * 181 / 256;
          var dr: int = (re[i] - re[j]) * 181 / 256;
          var si: int = (im[i] + im[j]) * 181 / 256;
          var di: int = (im[i] - im[j]) * 181 / 256;
          if (iabs(sr) > thresh) {
            // rare renormalization: a shared counter bump — the infrequent
            // cross-iteration conflict that makes DOALL abandon the gate
            renorm[0] = renorm[0] + 1;
            sr = sr / 2;
            si = si / 2;
          }
          re[i] = sr; re[j] = dr;
          im[i] = si; im[j] = di;
        }
      }
    } else {
      // phase-ish rotation on the set half; amplitudes that overflow bump a
      // shared renormalization counter — a rare cross-iteration conflict
      // (DOALL abandons on it, PDOALL restarts absorb it)
      for (var i: int = 0; i < n; i = i + 1) {
        if ((i & bit) != 0) {
          var r: int = re[i];
          re[i] = (r * 3 - im[i]) / 4;
          im[i] = (im[i] * 3 + r) / 4;
          if (iabs(re[i]) > thresh) {
            renorm[0] = renorm[0] + 1;
            re[i] = re[i] / 2;
            im[i] = im[i] / 2;
          }
        }
      }
    }
  }
  var check: int = renorm[0] * 1000000;
  for (var i: int = 0; i < n; i = i + 1) {
    check = check + iabs(re[i]) / 64 + iabs(im[i]) / 128;
  }
  print_int(check);
  return 0;
}
|src}

let h264ref =
  Defs.mk ~name:"464_h264ref" ~category:Defs.Int2006
    ~descr:"motion-estimation SAD search: nested reductions over candidate \
            displacements"
    {src|
fn main() -> int {
  var w: int = 64;
  var h: int = 48;
  var cur: int[] = new int[w * h];
  var ref: int[] = new int[w * h];
  var s: int = 41;
  for (var i: int = 0; i < w * h; i = i + 1) {
    s = lcg_next(s);
    cur[i] = (s >> 8) & 255;
    ref[i] = (s >> 16) & 255;
  }
  var total_sad: int = 0;
  var nbx: int = (w - 8 + 7) / 8;
  var pmv: int[] = new int[nbx + 1];
  // per-macroblock: candidates independent and SAD is a reduction, but each
  // block's search is centered on the predicted motion vector of its left
  // neighbour (pmv[]), a frequent memory LCD between blocks — the real
  // encoder's serializing dependence
  for (var by: int = 0; by < h - 8; by = by + 8) {
    for (var bx: int = 0; bx < w - 8; bx = bx + 8) {
      var center: int = pmv[bx / 8];
      var best: int = 1000000000;
      var bestd: int = 0;
      for (var dy: int = 0; dy < 3; dy = dy + 1) {
        for (var dx: int = 0; dx < 3; dx = dx + 1) {
          var ox: int = (center + dx) % 3;
          var sad: int = 0;
          for (var y: int = 0; y < 8; y = y + 1) {
            for (var x: int = 0; x < 8; x = x + 1) {
              var a: int = cur[(by + y) * w + bx + x];
              var b: int = ref[(by + y + dy) * w + bx + x + ox];
              sad = sad + iabs(a - b);
            }
          }
          if (sad < best) { best = sad; bestd = ox * 3 + dy; }
        }
      }
      pmv[bx / 8 + 1] = bestd;
      total_sad = total_sad + best;
    }
  }
  print_int(total_sad);
  return 0;
}
|src}

let omnetpp =
  Defs.mk ~name:"471_omnetpp" ~category:Defs.Int2006
    ~descr:"discrete-event simulation: heap-ordered queue mutated every \
            event — inherently serial"
    {src|
fn main() -> int {
  var cap: int = 256;
  var heap_t: int[] = new int[cap + 1];
  var heap_v: int[] = new int[cap + 1];
  var size: int = 0;
  var s: int = 43;
  // seed events
  for (var i: int = 0; i < 64; i = i + 1) {
    s = lcg_next(s);
    size = size + 1;
    heap_t[size] = lcg_pick(s, 1000);
    heap_v[size] = i;
    var c: int = size;
    while (c > 1 && heap_t[c / 2] > heap_t[c]) {
      var tt: int = heap_t[c / 2]; heap_t[c / 2] = heap_t[c]; heap_t[c] = tt;
      var tv: int = heap_v[c / 2]; heap_v[c / 2] = heap_v[c]; heap_v[c] = tv;
      c = c / 2;
    }
  }
  var processed: int = 0;
  var clock_now: int = 0;
  // event loop: every iteration pops the heap and pushes follow-ups — the
  // heap arrays carry frequent memory LCDs; clock_now is a register LCD
  while (size > 0 && processed < 3000) {
    clock_now = heap_t[1];
    var v: int = heap_v[1];
    heap_t[1] = heap_t[size];
    heap_v[1] = heap_v[size];
    size = size - 1;
    var c: int = 1;
    var sifting: bool = true;
    while (sifting) {
      var l: int = 2 * c;
      var r: int = 2 * c + 1;
      var m: int = c;
      if (l <= size && heap_t[l] < heap_t[m]) { m = l; }
      if (r <= size && heap_t[r] < heap_t[m]) { m = r; }
      if (m == c) {
        sifting = false;
      } else {
        var tt: int = heap_t[m]; heap_t[m] = heap_t[c]; heap_t[c] = tt;
        var tv: int = heap_v[m]; heap_v[m] = heap_v[c]; heap_v[c] = tv;
        c = m;
      }
    }
    processed = processed + 1;
    if (size < cap - 2 && (v & 3) != 3) {
      s = lcg_next(s);
      size = size + 1;
      heap_t[size] = clock_now + 1 + lcg_pick(s, 50);
      heap_v[size] = v + 1;
      var c2: int = size;
      while (c2 > 1 && heap_t[c2 / 2] > heap_t[c2]) {
        var tt2: int = heap_t[c2 / 2]; heap_t[c2 / 2] = heap_t[c2]; heap_t[c2] = tt2;
        var tv2: int = heap_v[c2 / 2]; heap_v[c2 / 2] = heap_v[c2]; heap_v[c2] = tv2;
        c2 = c2 / 2;
      }
    }
  }
  print_int(processed * 1000000 + clock_now);
  return 0;
}
|src}

let astar =
  Defs.mk ~name:"473_astar" ~category:Defs.Int2006
    ~descr:"grid pathfinding: heap-ordered open list popped serially, \
            neighbor relaxations with infrequent conflicts"
    {src|
fn main() -> int {
  var dim: int = 20;
  var n: int = dim * dim;
  var blocked: int[] = new int[n];
  var g: int[] = new int[n];
  var state: int[] = new int[n]; // 0 unseen, 1 open, 2 closed
  var s: int = 47;
  for (var i: int = 0; i < n; i = i + 1) {
    s = lcg_next(s);
    if (((s >> 16) & 15) < 4 && i != 0 && i != n - 1) { blocked[i] = 1; }
    g[i] = 1000000;
  }
  g[0] = 0;
  state[0] = 1;
  var heap: int[] = new int[n * 4 + 2];
  var hkey: int[] = new int[n * 4 + 2];
  var hsize: int = 0;
  hsize = 1;
  heap[1] = 0;
  hkey[1] = 0;
  var expansions: int = 0;
  var found: int = 0;
  while (found == 0 && expansions < 600) {
    // pop the best open node from the heap: serial in-place mutation,
    // exactly the structure that keeps real astar's speedup low
    var best: int = -1;
    while (best < 0 && hsize > 0) {
      var cand: int = heap[1];
      heap[1] = heap[hsize];
      hkey[1] = hkey[hsize];
      hsize = hsize - 1;
      var c: int = 1;
      var sift: bool = true;
      while (sift) {
        var l: int = 2 * c;
        var m: int = c;
        if (l <= hsize && hkey[l] < hkey[m]) { m = l; }
        if (l + 1 <= hsize && hkey[l + 1] < hkey[m]) { m = l + 1; }
        if (m == c) {
          sift = false;
        } else {
          var tk: int = hkey[m]; hkey[m] = hkey[c]; hkey[c] = tk;
          var tv: int = heap[m]; heap[m] = heap[c]; heap[c] = tv;
          c = m;
        }
      }
      if (state[cand] == 1) { best = cand; }
    }
    if (best < 0) {
      found = -1;
    } else {
      if (best == n - 1) {
        found = 1;
      } else {
        state[best] = 2;
        expansions = expansions + 1;
        var x: int = best % dim;
        // relax the four neighbours: writes are infrequent conflicts
        var gb: int = g[best] + 1;
        for (var d: int = 0; d < 4; d = d + 1) {
          var nb: int = best;
          var ok: int = 0;
          if (d == 0 && x + 1 < dim) { nb = best + 1; ok = 1; }
          if (d == 1 && x > 0) { nb = best - 1; ok = 1; }
          if (d == 2 && best + dim < n) { nb = best + dim; ok = 1; }
          if (d == 3 && best >= dim) { nb = best - dim; ok = 1; }
          if (ok == 1 && blocked[nb] == 0 && state[nb] != 2 && gb < g[nb]) {
            g[nb] = gb;
            state[nb] = 1;
            if (hsize < n * 4) {
              hsize = hsize + 1;
              heap[hsize] = nb;
              hkey[hsize] = gb + iabs(nb % dim - (n - 1) % dim) + iabs(nb / dim - (n - 1) / dim);
              var c2: int = hsize;
              while (c2 > 1 && hkey[c2 / 2] > hkey[c2]) {
                var tk2: int = hkey[c2 / 2]; hkey[c2 / 2] = hkey[c2]; hkey[c2] = tk2;
                var tv2: int = heap[c2 / 2]; heap[c2 / 2] = heap[c2]; heap[c2] = tv2;
                c2 = c2 / 2;
              }
            }
          }
        }
      }
    }
  }
  print_int(found * 1000000 + g[n - 1] % 1000000 + expansions);
  return 0;
}
|src}

let xalancbmk =
  Defs.mk ~name:"483_xalancbmk" ~category:Defs.Int2006
    ~descr:"XML-ish tree transform: explicit-stack DFS (serial cursor) with \
            per-node attribute loops"
    {src|
fn main() -> int {
  var n: int = 2000;
  var first_child: int[] = new int[n];
  var next_sib: int[] = new int[n];
  var tag: int[] = new int[n];
  var s: int = 53;
  // random tree: node i attaches under a previous node
  for (var i: int = 1; i < n; i = i + 1) {
    s = lcg_next(s);
    var parent: int = lcg_pick(s, i);
    next_sib[i] = first_child[parent];
    first_child[parent] = i;
    tag[i] = (s >> 16) & 7;
  }
  var stack: int[] = new int[n + 1];
  var sp: int = 0;
  stack[0] = 0;
  sp = 1;
  var rendered: int = 0;
  // DFS: the stack pointer is a frequent register LCD; node visits write
  // the output accumulator
  while (sp > 0) {
    sp = sp - 1;
    var node: int = stack[sp];
    // per-node attribute rendering: a small independent loop
    var attr: int = 0;
    for (var k: int = 0; k < 1 + (tag[node] & 3); k = k + 1) {
      attr = attr + ((node * 31 + k * 7) & 15);
    }
    rendered = rendered + attr;
    var ch: int = first_child[node];
    while (ch != 0) {
      stack[sp] = ch;
      sp = sp + 1;
      ch = next_sib[ch];
    }
  }
  print_int(rendered);
  return 0;
}
|src}

let benchmarks () =
  [
    perlbench; bzip2; gcc06; mcf06; gobmk; hmmer; sjeng; libquantum; h264ref;
    omnetpp; astar; xalancbmk;
  ]
