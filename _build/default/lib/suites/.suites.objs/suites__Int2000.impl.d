lib/suites/int2000.ml: Defs
