lib/suites/defs.ml:
