lib/suites/suite.mli: Defs
