lib/suites/int2006.ml: Defs
