lib/suites/suite.ml: Defs Eembc Fp2000 Fp2006 Int2000 Int2006 List
