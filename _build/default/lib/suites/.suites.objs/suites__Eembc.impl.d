lib/suites/eembc.ml: Defs
