lib/suites/fp2000.ml: Defs
