lib/suites/fp2006.ml: Defs
