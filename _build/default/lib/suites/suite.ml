(* Registry over the per-suite benchmark lists. *)



type category = Defs.category = Int2000 | Int2006 | Fp2000 | Fp2006 | Eembc

type benchmark = Defs.benchmark = {
  name : string;
  category : category;
  descr : string;
  source : string;
  expected : string option;
}

let category_name = Defs.category_name

let is_numeric = Defs.is_numeric

let all () : benchmark list =
  Int2000.benchmarks () @ Int2006.benchmarks () @ Fp2000.benchmarks ()
  @ Fp2006.benchmarks () @ Eembc.benchmarks ()

let by_category cat = List.filter (fun b -> b.category = cat) (all ())

let find name = List.find_opt (fun b -> b.name = name) (all ())

let names () = List.map (fun b -> b.name) (all ())

let categories = [ Int2000; Int2006; Fp2000; Fp2006; Eembc ]
