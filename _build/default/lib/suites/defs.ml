(* Benchmark registry. Each benchmark is a standalone Looplang program named
   after — and shaped like — a benchmark from the paper's suites (SPEC
   CPU2000/2006 INT & FP, EEMBC). SPEC sources and inputs are proprietary;
   what the limit study measures is the loop-carried-dependency structure, so
   every kernel here is written to exhibit its namesake's documented
   character (see DESIGN.md §2). Programs are deterministic and self-checking
   via a printed checksum. *)

type category = Int2000 | Int2006 | Fp2000 | Fp2006 | Eembc

let category_name = function
  | Int2000 -> "cint2000"
  | Int2006 -> "cint2006"
  | Fp2000 -> "cfp2000"
  | Fp2006 -> "cfp2006"
  | Eembc -> "eembc"

let is_numeric = function
  | Fp2000 | Fp2006 | Eembc -> true
  | Int2000 | Int2006 -> false

type benchmark = {
  name : string;
  category : category;
  descr : string;
  source : string;
  (* expected checksum output, for the self-check tests *)
  expected : string option;
}

(* Every program gets the deterministic pseudo-random helpers. [lcg_next] is
   pure (fn1-parallelizable); benchmarks that want thread-unsafe randomness
   (the annealers) call the rand() builtin instead. *)
let prelude =
  {|
fn lcg_next(s: int) -> int {
  return (s * 1103515245 + 12345) & 2147483647;
}
fn lcg_float(s: int) -> float {
  return float((s >> 15) & 65535) / 65536.0;
}
fn lcg_pick(s: int, range: int) -> int {
  // draw from the LCG's high bits: the low bits of a power-of-two LCG are
  // periodic and must not be used directly
  return (((s >> 15) & 65535) * range) >> 16;
}
|}

let mk ~name ~category ~descr ?expected body =
  { name; category; descr; source = prelude ^ body; expected }

