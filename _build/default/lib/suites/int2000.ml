(* SpecINT2000-shaped non-numeric kernels. The character the paper reports
   for cint2000: loops serialized by frequent true LCDs through registers
   (rolling state, cursors) and memory (in-place structures), structural
   call hazards (helpers invoked every iteration), and occasional
   thread-unsafe calls (rand in the annealers) — so DOALL/PDOALL gain little
   and the HELIX dep1-fn2 ladder is what unlocks speedup. *)

let gzip =
  Defs.mk ~name:"164_gzip" ~category:Defs.Int2000
    ~descr:"LZ77 sliding-window compression: cursor advances by match length \
            (non-computable register LCD), hash-head table updated in place"
    {src|
global hash_head: int[];

fn match_len(data: int[], a: int, b: int, limit: int) -> int {
  var len: int = 0;
  while (len < 16 && b + len < limit && data[a + len] == data[b + len]) {
    len = len + 1;
  }
  return len;
}

fn main() -> int {
  var n: int = 4000;
  var data: int[] = new int[n];
  var s: int = 7;
  for (var i: int = 0; i < n; i = i + 1) {
    s = lcg_next(s);
    // skewed alphabet so matches actually occur
    data[i] = (s >> 3) & 7;
  }
  hash_head = new int[512];
  var pos: int = 3;
  var emitted: int = 0;
  var literals: int = 0;
  // the compression cursor: pos advances by a data-dependent amount — a
  // frequent, unpredictable register LCD; hash_head writes feed later reads
  while (pos < n - 16) {
    var h: int = (data[pos] * 64 + data[pos + 1] * 8 + data[pos + 2]) & 511;
    var cand: int = hash_head[h];
    hash_head[h] = pos;
    var len: int = 0;
    if (cand > 0 && cand < pos) {
      len = match_len(data, cand, pos, n);
    }
    if (len >= 3) {
      emitted = emitted + 1;
      pos = pos + len;
    } else {
      literals = literals + 1;
      pos = pos + 1;
    }
  }
  print_int(emitted * 100000 + literals);
  return 0;
}
|src}

let vpr =
  Defs.mk ~name:"175_vpr" ~category:Defs.Int2000
    ~descr:"placement annealing: rand() in the move loop (thread-unsafe), \
            accept/reject state, parallel cost evaluation inside"
    {src|
fn main() -> int {
  var cells: int = 160;
  var pos: int[] = new int[cells];
  var netw: int[] = new int[cells];
  for (var i: int = 0; i < cells; i = i + 1) {
    pos[i] = (i * 37) % 64;
    netw[i] = (i * 13 + 5) % cells;
  }
  srand(12345);
  var cost: int = 0;
  // initial cost: independent per cell
  for (var i: int = 0; i < cells; i = i + 1) {
    cost = cost + iabs(pos[i] - pos[netw[i]]);
  }
  var accepted: int = 0;
  // the annealing loop: every iteration calls rand() (global hidden state:
  // -fn3 territory) and conditionally mutates the placement in place
  for (var move: int = 0; move < 900; move = move + 1) {
    var c: int = rand() % cells;
    var newp: int = rand() % 64;
    var old: int = pos[c];
    var delta: int = iabs(newp - pos[netw[c]]) - iabs(old - pos[netw[c]]);
    if (delta < 0 || (rand() & 7) == 0) {
      pos[c] = newp;
      cost = cost + delta;
      accepted = accepted + 1;
    }
  }
  print_int(cost * 1000 + accepted % 1000);
  return 0;
}
|src}

let gcc =
  Defs.mk ~name:"176_gcc" ~category:Defs.Int2000
    ~descr:"constant-propagation worklist over array-encoded instructions: \
            lattice updated in place, helper calls each iteration"
    {src|
global lattice: int[];

fn meet(a: int, b: int) -> int {
  // 0 = top, 1.. = constants, -1 = bottom
  if (a == 0) { return b; }
  if (b == 0) { return a; }
  if (a == b) { return a; }
  return -1;
}

fn main() -> int {
  var ninsn: int = 900;
  var op1: int[] = new int[ninsn];
  var op2: int[] = new int[ninsn];
  lattice = new int[ninsn];
  var s: int = 17;
  for (var i: int = 0; i < ninsn; i = i + 1) {
    s = lcg_next(s);
    op1[i] = lcg_pick(s, i + 1);
    s = lcg_next(s);
    op2[i] = lcg_pick(s, i + 1);
    lattice[i] = 0;
  }
  lattice[0] = 1;
  var changed: int = 1;
  var rounds: int = 0;
  // fixpoint sweeps: instruction i reads the lattice cells of its operands,
  // which earlier iterations of the same sweep may have just written —
  // frequent memory LCDs; meet() is a pure helper call
  while (changed == 1 && rounds < 8) {
    changed = 0;
    for (var i: int = 1; i < ninsn; i = i + 1) {
      var v: int = meet(lattice[op1[i]], lattice[op2[i]]);
      if (v == 0) { v = (i % 5) + 1; }
      if (v != lattice[i]) {
        lattice[i] = v;
        changed = 1;
      }
    }
    rounds = rounds + 1;
  }
  var check: int = rounds;
  for (var i: int = 0; i < ninsn; i = i + 1) { check = check + lattice[i] * (i & 7); }
  print_int(check);
  return 0;
}
|src}

let mcf =
  Defs.mk ~name:"181_mcf" ~category:Defs.Int2000
    ~descr:"Bellman-Ford relaxation over an arc list: distance array updated \
            in place, conflicts when arcs share heads"
    {src|
fn main() -> int {
  var nodes: int = 300;
  var arcs: int = 1800;
  var src: int[] = new int[arcs];
  var dst: int[] = new int[arcs];
  var w: int[] = new int[arcs];
  var dist: int[] = new int[nodes];
  var s: int = 29;
  for (var a: int = 0; a < arcs; a = a + 1) {
    s = lcg_next(s);
    src[a] = lcg_pick(s, nodes);
    s = lcg_next(s);
    dst[a] = lcg_pick(s, nodes);
    s = lcg_next(s);
    w[a] = 1 + lcg_pick(s, 20);
  }
  for (var i: int = 1; i < nodes; i = i + 1) { dist[i] = 1000000; }
  // relaxation passes: most arcs do not improve anything, so writes (and
  // hence cross-iteration RAW conflicts) are infrequent — the shape that
  // makes 429/181 mcf PDOALL-friendly in the paper's Figure 4
  for (var pass: int = 0; pass < 6; pass = pass + 1) {
    for (var a: int = 0; a < arcs; a = a + 1) {
      var nd: int = dist[src[a]] + w[a];
      if (nd < dist[dst[a]]) {
        dist[dst[a]] = nd;
      }
    }
  }
  var check: int = 0;
  for (var i: int = 0; i < nodes; i = i + 1) { check = check + (dist[i] & 1023); }
  print_int(check);
  return 0;
}
|src}

let crafty =
  Defs.mk ~name:"186_crafty" ~category:Defs.Int2000
    ~descr:"negamax game search: recursion from inside the move loop, \
            bitboard-ish evaluation"
    {src|
global visited: int;

fn evaluate(board: int, side: int) -> int {
  var v: int = board ^ (side * 2654435761);
  v = v ^ (v >> 13);
  v = (v * 1099511627) & 1073741823;
  return (v & 255) - 128;
}

fn search(board: int, side: int, depth: int) -> int {
  visited = visited + 1;
  if (depth == 0) {
    return evaluate(board, side);
  }
  var best: int = -1000000;
  // the move loop: each move recurses — structural call hazard inside the
  // loop; alpha tracking is a max reduction
  for (var mv: int = 0; mv < 5; mv = mv + 1) {
    var nb: int = (board * 31 + mv * 7 + side) & 1073741823;
    var sc: int = 0 - search(nb, 1 - side, depth - 1);
    best = imax(best, sc);
  }
  return best;
}

fn main() -> int {
  visited = 0;
  var total: int = 0;
  for (var root: int = 0; root < 12; root = root + 1) {
    total = total + search(root * 104729 + 1, 0, 5);
  }
  print_int(total * 1000 + visited % 1000);
  return 0;
}
|src}

let parser =
  Defs.mk ~name:"197_parser" ~category:Defs.Int2000
    ~descr:"token-stream state machine with dictionary hashing: rolling \
            parser state is a frequent register LCD"
    {src|
fn hash_word(w: int) -> int {
  var h: int = w * 2654435761;
  h = h ^ (h >> 16);
  return h & 1023;
}

fn main() -> int {
  var n: int = 6000;
  var tokens: int[] = new int[n];
  var dict: int[] = new int[1024];
  var s: int = 37;
  for (var i: int = 0; i < n; i = i + 1) {
    s = lcg_next(s);
    tokens[i] = lcg_pick(s, 40);
  }
  var state: int = 0;
  var links: int = 0;
  var errors: int = 0;
  // the parse loop: state evolves by a data-dependent table-free automaton
  // (frequent unpredictable register LCD); dictionary counts update in place
  for (var i: int = 0; i < n; i = i + 1) {
    var t: int = tokens[i];
    var h: int = hash_word(t * 131 + state);
    dict[h] = dict[h] + 1;
    if (state == 0) {
      if (t < 10) { state = 1; } else { state = 2; }
    } else {
      if (state == 1) {
        if (t < 20) { links = links + 1; state = 2; } else { state = 0; }
      } else {
        if (t < 30) { state = 1; } else { errors = errors + 1; state = 0; }
      }
    }
  }
  var check: int = links * 10000 + errors;
  for (var i: int = 0; i < 1024; i = i + 1) { check = check + dict[i] * (i & 3); }
  print_int(check);
  return 0;
}
|src}

let eon =
  Defs.mk ~name:"252_eon" ~category:Defs.Int2000
    ~descr:"probabilistic ray tracer: Monte-Carlo jitter draws rand() every \
            pixel, so the pixel loops only parallelize under -fn3"
    {src|
fn shade(px: int, py: int, jitter: int) -> int {
  var fx: float = float(px) * 0.07 + float(jitter & 15) * 0.002;
  var fy: float = float(py) * 0.05 + float((jitter >> 4) & 15) * 0.002;
  var v: float = sin(fx) * cos(fy) + sqrt(fx * fy + 1.0);
  return int(v * 100.0) & 255;
}

fn main() -> int {
  var w: int = 80;
  var h: int = 60;
  var img: int[] = new int[w * h];
  srand(99);
  // pixels independent except for the Monte-Carlo sampler: rand()'s hidden
  // state serializes the loop under fn0-fn2 (paper Table II: fn3 only)
  for (var y: int = 0; y < h; y = y + 1) {
    for (var x: int = 0; x < w; x = x + 1) {
      img[y * w + x] = shade(x, y, rand());
    }
  }
  var check: int = 0;
  for (var i: int = 0; i < w * h; i = i + 1) { check = check + img[i]; }
  print_int(check);
  return 0;
}
|src}

let perlbmk =
  Defs.mk ~name:"253_perlbmk" ~category:Defs.Int2000
    ~descr:"hash-table interpreter loop: rolling hash register LCD, bucket \
            chains updated in place"
    {src|
fn main() -> int {
  var buckets: int = 256;
  var counts: int[] = new int[buckets];
  var vals: int[] = new int[buckets];
  var ops: int = 5000;
  var s: int = 43;
  var rollh: int = 5381;
  // interpreter-style loop: the rolling hash is a frequent unpredictable
  // register LCD; bucket updates create frequent memory LCDs on hot keys
  for (var i: int = 0; i < ops; i = i + 1) {
    s = lcg_next(s);
    var key: int = lcg_pick(s, 64);
    rollh = ((rollh * 33) ^ key) & 1048575;
    var b: int = rollh & 255;
    counts[b] = counts[b] + 1;
    vals[b] = vals[b] ^ key;
  }
  var check: int = rollh;
  for (var i: int = 0; i < buckets; i = i + 1) {
    check = check + counts[i] * 3 + vals[i];
  }
  print_int(check);
  return 0;
}
|src}

let gap =
  Defs.mk ~name:"254_gap" ~category:Defs.Int2000
    ~descr:"orbit enumeration (BFS over a permutation group): queue cursors \
            are stride-predictable register LCDs (dep2 territory)"
    {src|
fn main() -> int {
  var n: int = 3000;
  var gen1: int = 1031;
  var gen2: int = 1777;
  var seen: int[] = new int[n];
  var queue: int[] = new int[n + 8];
  var head: int = 0;
  var tail: int = 0;
  queue[0] = 1;
  seen[1] = 1;
  tail = 1;
  var total: int = 0;
  // BFS: head almost always advances by exactly 1 (stride-predictable
  // non-computable LCD); tail advances data-dependently; seen[] writes are
  // infrequent conflicts once the orbit saturates
  while (head < tail) {
    var x: int = queue[head];
    head = head + 1;
    total = total + x;
    var y1: int = (x * gen1) % n;
    if (seen[y1] == 0) {
      seen[y1] = 1;
      queue[tail] = y1;
      tail = tail + 1;
    }
    var y2: int = (x + gen2) % n;
    if (seen[y2] == 0) {
      seen[y2] = 1;
      queue[tail] = y2;
      tail = tail + 1;
    }
  }
  print_int(total % 1000000 + tail * 1000000);
  return 0;
}
|src}

let vortex =
  Defs.mk ~name:"255_vortex" ~category:Defs.Int2000
    ~descr:"object database: insert/lookup transactions through impure \
            helpers (fn2 needed), index updated in place"
    {src|
global db_keys: int[];
global db_vals: int[];
global db_size: int;

fn db_insert(key: int, val: int) {
  var slot: int = key & 511;
  while (db_keys[slot] != 0 && db_keys[slot] != key) {
    slot = (slot + 1) & 511;
  }
  if (db_keys[slot] == 0) {
    db_keys[slot] = key;
    db_size = db_size + 1;
  }
  db_vals[slot] = db_vals[slot] + val;
}

fn db_lookup(key: int) -> int {
  var slot: int = key & 511;
  while (db_keys[slot] != 0 && db_keys[slot] != key) {
    slot = (slot + 1) & 511;
  }
  return db_vals[slot];
}

fn main() -> int {
  db_keys = new int[512];
  db_vals = new int[512];
  db_size = 0;
  var txns: int = 2500;
  var s: int = 53;
  var check: int = 0;
  // transaction loop: every iteration calls an instrumented, impure helper
  // (parallel only under fn2+), whose probes conflict on hot slots
  for (var t: int = 0; t < txns; t = t + 1) {
    s = lcg_next(s);
    var key: int = 1 + lcg_pick(s, 200);
    if (((s >> 16) & 3) == 0) {
      db_insert(key, t & 15);
    } else {
      check = check + db_lookup(key);
    }
  }
  print_int(check + db_size * 1000000);
  return 0;
}
|src}

let bzip2 =
  Defs.mk ~name:"256_bzip2" ~category:Defs.Int2000
    ~descr:"move-to-front + run-length coding: the MTF list mutates every \
            iteration (frequent memory LCDs)"
    {src|
fn main() -> int {
  var alpha: int = 64;
  var mtf: int[] = new int[alpha];
  var n: int = 3000;
  var data: int[] = new int[n];
  var s: int = 59;
  for (var i: int = 0; i < alpha; i = i + 1) { mtf[i] = i; }
  for (var i: int = 0; i < n; i = i + 1) {
    s = lcg_next(s);
    data[i] = (s >> 2) & 15; // skewed: only low symbols, runs matter
  }
  var out: int = 0;
  var runlen: int = 0;
  // MTF: every iteration searches and rotates the list in place — the
  // paper's frequent-memory-LCD poster child; runlen is a register LCD
  for (var i: int = 0; i < n; i = i + 1) {
    var sym: int = data[i];
    var j: int = 0;
    while (mtf[j] != sym) { j = j + 1; }
    var k: int = j;
    while (k > 0) {
      mtf[k] = mtf[k - 1];
      k = k - 1;
    }
    mtf[0] = sym;
    if (j == 0) {
      runlen = runlen + 1;
    } else {
      out = out + runlen * 3 + j;
      runlen = 0;
    }
  }
  print_int(out + runlen);
  return 0;
}
|src}

let twolf =
  Defs.mk ~name:"300_twolf" ~category:Defs.Int2000
    ~descr:"standard-cell annealing: rand() moves (thread-unsafe) around a \
            parallel wirelength evaluation"
    {src|
fn main() -> int {
  var cells: int = 120;
  var xpos: int[] = new int[cells];
  var net: int[] = new int[cells];
  for (var i: int = 0; i < cells; i = i + 1) {
    xpos[i] = (i * 29) % 100;
    net[i] = (i * 7 + 3) % cells;
  }
  srand(777);
  var temperature: int = 100;
  var check: int = 0;
  while (temperature > 0) {
    // wirelength: independent per cell (reduction)
    var wl: int = 0;
    for (var i: int = 0; i < cells; i = i + 1) {
      wl = wl + iabs(xpos[i] - xpos[net[i]]);
    }
    // move loop: serialized by the global rand() state under fn0-fn2
    for (var m: int = 0; m < 40; m = m + 1) {
      var c: int = rand() % cells;
      var np: int = rand() % 100;
      var d: int = iabs(np - xpos[net[c]]) - iabs(xpos[c] - xpos[net[c]]);
      if (d < 0 || rand() % (temperature + 1) > temperature / 2) {
        xpos[c] = np;
      }
    }
    check = check + wl;
    temperature = temperature - 4;
  }
  print_int(check);
  return 0;
}
|src}

let benchmarks () =
  [
    gzip; vpr; gcc; mcf; crafty; parser; eon; perlbmk; gap; vortex; bzip2; twolf;
  ]
