(* SpecFP2000-shaped numeric kernels. Regular counted loops, affine accesses,
   float reductions, pure math calls — the dependency character the paper
   reports for cfp2000: large DOALL/PDOALL gains, reductions mattering
   (179_art most of all), and a couple of sweep kernels whose outer time loop
   carries frequent memory LCDs that only HELIX-style synchronization can
   overlap. *)

let wupwise =
  Defs.mk ~name:"168_wupwise" ~category:Defs.Fp2000
    ~descr:"complex matrix-vector products (lattice QCD hopping term)"
    {src|
fn main() -> int {
  var n: int = 96;
  var mre: float[] = new float[n * n];
  var mim: float[] = new float[n * n];
  var vre: float[] = new float[n];
  var vim: float[] = new float[n];
  var s: int = 7;
  for (var i: int = 0; i < n * n; i = i + 1) {
    s = lcg_next(s);
    mre[i] = lcg_float(s) - 0.5;
    s = lcg_next(s);
    mim[i] = lcg_float(s) - 0.5;
  }
  for (var i: int = 0; i < n; i = i + 1) {
    vre[i] = float(i % 7) * 0.125;
    vim[i] = float(i % 5) * 0.25;
  }
  var outre: float[] = new float[n];
  var outim: float[] = new float[n];
  // four sweeps of complex mat-vec: rows independent, per-row reductions
  for (var sweep: int = 0; sweep < 4; sweep = sweep + 1) {
    for (var i: int = 0; i < n; i = i + 1) {
      var accre: float = 0.0;
      var accim: float = 0.0;
      for (var j: int = 0; j < n; j = j + 1) {
        var ar: float = mre[i * n + j];
        var ai: float = mim[i * n + j];
        accre = accre + ar * vre[j] - ai * vim[j];
        accim = accim + ar * vim[j] + ai * vre[j];
      }
      outre[i] = accre;
      outim[i] = accim;
    }
    // normalize feeds the next sweep: the time loop carries the vectors
    for (var i: int = 0; i < n; i = i + 1) {
      vre[i] = outre[i] * 0.01;
      vim[i] = outim[i] * 0.01;
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) {
    check = check + vre[i] * vre[i] + vim[i] * vim[i];
  }
  print_float(check * 1000000.0);
  return 0;
}
|src}

let swim =
  Defs.mk ~name:"171_swim" ~category:Defs.Fp2000
    ~descr:"shallow-water finite-difference stencil sweeps"
    {src|
fn main() -> int {
  var w: int = 64;
  var h: int = 64;
  var u: float[] = new float[w * h];
  var v: float[] = new float[w * h];
  var p: float[] = new float[w * h];
  var unew: float[] = new float[w * h];
  var vnew: float[] = new float[w * h];
  var pnew: float[] = new float[w * h];
  for (var i: int = 0; i < w * h; i = i + 1) {
    u[i] = float((i * 13) % 17) * 0.05;
    v[i] = float((i * 7) % 11) * 0.04;
    p[i] = 50.0 + float(i % 23) * 0.1;
  }
  // time stepping: each step reads the previous step's fields (outer loop
  // carries frequent memory LCDs); the spatial sweeps are independent
  for (var t: int = 0; t < 12; t = t + 1) {
    for (var y: int = 1; y < h - 1; y = y + 1) {
      for (var x: int = 1; x < w - 1; x = x + 1) {
        var c: int = y * w + x;
        unew[c] = u[c] - 0.1 * (p[c + 1] - p[c - 1]) + 0.01 * v[c];
        vnew[c] = v[c] - 0.1 * (p[c + w] - p[c - w]) - 0.01 * u[c];
        pnew[c] = p[c] - 0.2 * (u[c + 1] - u[c - 1] + v[c + w] - v[c - w]);
      }
    }
    for (var i: int = 0; i < w * h; i = i + 1) {
      u[i] = unew[i];
      v[i] = vnew[i];
      p[i] = pnew[i];
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < w * h; i = i + 1) { check = check + p[i]; }
  print_float(check);
  return 0;
}
|src}

let mgrid =
  Defs.mk ~name:"172_mgrid" ~category:Defs.Fp2000
    ~descr:"multigrid V-cycle: smooth, restrict, prolongate"
    {src|
fn smooth(a: float[], rhs: float[], n: int, sweeps: int) {
  for (var s: int = 0; s < sweeps; s = s + 1) {
    for (var i: int = 1; i < n - 1; i = i + 1) {
      a[i] = 0.5 * (a[i - 1] + a[i + 1] - rhs[i]);
    }
  }
}

fn restrict_grid(fine: float[], coarse: float[], nc: int) {
  for (var i: int = 1; i < nc - 1; i = i + 1) {
    coarse[i] = 0.25 * (fine[2 * i - 1] + 2.0 * fine[2 * i] + fine[2 * i + 1]);
  }
}

fn prolongate(coarse: float[], fine: float[], nc: int) {
  for (var i: int = 1; i < nc - 1; i = i + 1) {
    fine[2 * i] = fine[2 * i] + coarse[i];
    fine[2 * i + 1] = fine[2 * i + 1] + 0.5 * (coarse[i] + coarse[i + 1]);
  }
}

fn main() -> int {
  var n: int = 1024;
  var a: float[] = new float[n];
  var rhs: float[] = new float[n];
  var coarse: float[] = new float[n / 2];
  var crhs: float[] = new float[n / 2];
  for (var i: int = 0; i < n; i = i + 1) {
    rhs[i] = float((i * 31) % 13) * 0.01 - 0.06;
    a[i] = 0.0;
  }
  for (var cycle: int = 0; cycle < 6; cycle = cycle + 1) {
    smooth(a, rhs, n, 2);
    restrict_grid(a, coarse, n / 2);
    restrict_grid(rhs, crhs, n / 2);
    smooth(coarse, crhs, n / 2, 4);
    prolongate(coarse, a, n / 2);
    smooth(a, rhs, n, 2);
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { check = check + a[i] * a[i]; }
  print_float(check);
  return 0;
}
|src}

let applu =
  Defs.mk ~name:"173_applu" ~category:Defs.Fp2000
    ~descr:"SSOR wavefront sweep: row i depends on row i-1"
    {src|
fn main() -> int {
  var n: int = 200;
  var m: int = 48;
  var g: float[] = new float[n * m];
  var c: float[] = new float[m];
  for (var j: int = 0; j < m; j = j + 1) { c[j] = 0.3 + float(j % 4) * 0.1; }
  for (var j: int = 0; j < m; j = j + 1) { g[j] = float(j % 9) * 0.2; }
  // forward substitution: each row consumes the previous row (frequent
  // memory LCD on the outer loop) while columns are independent
  for (var i: int = 1; i < n; i = i + 1) {
    for (var j: int = 0; j < m; j = j + 1) {
      var left: float = 0.0;
      if (j > 0) { left = g[(i - 1) * m + j - 1]; }
      g[i * m + j] = c[j] * g[(i - 1) * m + j] + 0.1 * left + 0.01;
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n * m; i = i + 1) { check = check + g[i]; }
  print_float(check);
  return 0;
}
|src}

let mesa =
  Defs.mk ~name:"177_mesa" ~category:Defs.Fp2000
    ~descr:"vertex transform pipeline with sqrt normalization"
    {src|
fn main() -> int {
  var n: int = 6000;
  var x: float[] = new float[n];
  var y: float[] = new float[n];
  var z: float[] = new float[n];
  var s: int = 5;
  for (var i: int = 0; i < n; i = i + 1) {
    s = lcg_next(s);
    x[i] = lcg_float(s) * 4.0 - 2.0;
    s = lcg_next(s);
    y[i] = lcg_float(s) * 4.0 - 2.0;
    s = lcg_next(s);
    z[i] = lcg_float(s) * 4.0 + 1.0;
  }
  var ox: float[] = new float[n];
  var oy: float[] = new float[n];
  // per-vertex transform + perspective divide + normalize: independent
  // iterations, but each calls sqrt (pure) — serialized under -fn0 only
  for (var i: int = 0; i < n; i = i + 1) {
    var tx: float = 0.866 * x[i] - 0.5 * y[i] + 0.1;
    var ty: float = 0.5 * x[i] + 0.866 * y[i] - 0.2;
    var tz: float = z[i] + 3.0;
    var len: float = sqrt(tx * tx + ty * ty + tz * tz);
    ox[i] = tx / len * 100.0 / tz;
    oy[i] = ty / len * 100.0 / tz;
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { check = check + ox[i] + oy[i]; }
  print_float(check);
  return 0;
}
|src}

let galgel =
  Defs.mk ~name:"178_galgel" ~category:Defs.Fp2000
    ~descr:"Gaussian elimination: serial pivot walk, parallel row updates"
    {src|
fn main() -> int {
  var n: int = 72;
  var a: float[] = new float[n * n];
  var s: int = 11;
  for (var i: int = 0; i < n * n; i = i + 1) {
    s = lcg_next(s);
    a[i] = lcg_float(s) + 0.01;
  }
  for (var i: int = 0; i < n; i = i + 1) {
    a[i * n + i] = a[i * n + i] + float(n);
  }
  // elimination: the pivot loop is serial (each step reads results of the
  // previous), the row/column updates inside are independent
  for (var k: int = 0; k < n - 1; k = k + 1) {
    var piv: float = a[k * n + k];
    for (var i: int = k + 1; i < n; i = i + 1) {
      var f: float = a[i * n + k] / piv;
      for (var j: int = k; j < n; j = j + 1) {
        a[i * n + j] = a[i * n + j] - f * a[k * n + j];
      }
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { check = check + a[i * n + i]; }
  print_float(check);
  return 0;
}
|src}

let art =
  Defs.mk ~name:"179_art" ~category:Defs.Fp2000
    ~descr:"ART neural net: F2 activations (dot-product reductions), winner \
            search, infrequent weight resets"
    {src|
fn main() -> int {
  var inputs: int = 64;
  var neurons: int = 60;
  var w: float[] = new float[neurons * inputs];
  var pat: float[] = new float[inputs];
  var act: float[] = new float[neurons];
  // hash-based init (computable index function): initialization is a tiny,
  // fully parallel fraction of the run, as in the real benchmark
  for (var i: int = 0; i < neurons * inputs; i = i + 1) {
    w[i] = float((i * 2654435761) & 65535) / 65536.0;
  }
  var check: float = 0.0;
  for (var trial: int = 0; trial < 40; trial = trial + 1) {
    for (var i: int = 0; i < inputs; i = i + 1) {
      pat[i] = float((trial * 7 + i * 3) % 16) * 0.0625;
    }
    // F2 activation: per-neuron dot product — reduction inside, neurons
    // independent (reduc1 unlocks both levels)
    for (var j: int = 0; j < neurons; j = j + 1) {
      var sum: float = 0.0;
      for (var i: int = 0; i < inputs; i = i + 1) {
        sum = sum + w[j * inputs + i] * pat[i];
      }
      act[j] = sum;
    }
    // winner-take-all: max reduction
    var best: float = 0.0 - 1.0;
    var winner: int = 0;
    for (var j: int = 0; j < neurons; j = j + 1) {
      if (act[j] > best) { best = act[j]; winner = j; }
    }
    // resonance test: weights are learned only when the winner matches
    // poorly, so the trial loop's cross-iteration conflicts are rare —
    // PDOALL restarts absorb them, HELIX pays its worst-case delta on
    // every trial (the paper's Figure 4 shows 179_art preferring PDOALL)
    if ((int(best * 16.0) & 7) == 0) {
      for (var i: int = 0; i < inputs; i = i + 1) {
        var idx: int = winner * inputs + i;
        w[idx] = 0.9 * w[idx] + 0.1 * pat[i];
      }
    }
    check = check + best;
  }
  print_float(check);
  return 0;
}
|src}

let equake =
  Defs.mk ~name:"183_equake" ~category:Defs.Fp2000
    ~descr:"sparse matrix-vector product (CSR) time stepping"
    {src|
fn main() -> int {
  var n: int = 600;
  var nnz_per_row: int = 7;
  var cols: int[] = new int[n * nnz_per_row];
  var vals: float[] = new float[n * nnz_per_row];
  var x: float[] = new float[n];
  var y: float[] = new float[n];
  var s: int = 19;
  for (var i: int = 0; i < n; i = i + 1) {
    for (var k: int = 0; k < nnz_per_row; k = k + 1) {
      s = lcg_next(s);
      cols[i * nnz_per_row + k] = lcg_pick(s, n);
      s = lcg_next(s);
      vals[i * nnz_per_row + k] = lcg_float(s) - 0.5;
    }
    x[i] = float(i % 10) * 0.1;
  }
  for (var t: int = 0; t < 8; t = t + 1) {
    // rows independent; per-row gather + reduction with irregular reads
    for (var i: int = 0; i < n; i = i + 1) {
      var sum: float = 0.0;
      for (var k: int = 0; k < nnz_per_row; k = k + 1) {
        sum = sum + vals[i * nnz_per_row + k] * x[cols[i * nnz_per_row + k]];
      }
      y[i] = sum;
    }
    for (var i: int = 0; i < n; i = i + 1) { x[i] = x[i] + 0.05 * y[i]; }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { check = check + x[i]; }
  print_float(check);
  return 0;
}
|src}

let ammp =
  Defs.mk ~name:"188_ammp" ~category:Defs.Fp2000
    ~descr:"molecular dynamics: neighbor-list force accumulation"
    {src|
fn main() -> int {
  var atoms: int = 220;
  var nbrs: int = 12;
  var pos: float[] = new float[atoms];
  var force: float[] = new float[atoms];
  var nbr: int[] = new int[atoms * nbrs];
  var s: int = 23;
  for (var i: int = 0; i < atoms; i = i + 1) {
    s = lcg_next(s);
    pos[i] = lcg_float(s) * 10.0;
    for (var k: int = 0; k < nbrs; k = k + 1) {
      s = lcg_next(s);
      nbr[i * nbrs + k] = lcg_pick(s, atoms);
    }
  }
  for (var step: int = 0; step < 14; step = step + 1) {
    // per-atom force: reduction over own neighbor list, atoms independent
    for (var i: int = 0; i < atoms; i = i + 1) {
      var f: float = 0.0;
      for (var k: int = 0; k < nbrs; k = k + 1) {
        var j: int = nbr[i * nbrs + k];
        var d: float = pos[i] - pos[j];
        var r2: float = d * d + 0.01;
        f = f + d / (r2 * r2);
      }
      force[i] = f;
    }
    // integration feeds the next step (time loop carries positions)
    for (var i: int = 0; i < atoms; i = i + 1) {
      pos[i] = pos[i] + 0.0001 * force[i];
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < atoms; i = i + 1) { check = check + pos[i]; }
  print_float(check);
  return 0;
}
|src}

let lucas =
  Defs.mk ~name:"189_lucas" ~category:Defs.Fp2000
    ~descr:"Lucas-Lehmer-style chain: serial unpredictable register LCD over \
            parallel digit arithmetic"
    {src|
fn main() -> int {
  var digits: int = 256;
  var a: int[] = new int[digits];
  var carrybuf: int[] = new int[digits];
  for (var i: int = 0; i < digits; i = i + 1) { a[i] = (i * 7 + 3) % 10; }
  var sacc: int = 4;
  // the outer chain s <- s*s - 2 (mod m) is a true, frequent, unpredictable
  // register LCD; the per-digit work inside each step is parallel
  for (var step: int = 0; step < 160; step = step + 1) {
    sacc = (sacc * sacc - 2) & 1048575;
    var mul: int = (sacc & 7) + 1;
    for (var i: int = 0; i < digits; i = i + 1) {
      carrybuf[i] = a[i] * mul + (sacc & 3);
    }
    for (var i: int = 0; i < digits; i = i + 1) {
      a[i] = carrybuf[i] % 10;
    }
  }
  var check: int = sacc;
  for (var i: int = 0; i < digits; i = i + 1) { check = check + a[i] * i; }
  print_int(check);
  return 0;
}
|src}

let benchmarks () =
  [ wupwise; swim; mgrid; applu; mesa; galgel; art; equake; ammp; lucas ]
