(* SpecFP2006-shaped numeric kernels. Same regular character as cfp2000 plus
   the two benchmarks the paper singles out in Figure 4 as PDOALL-friendly
   (450_soplex, 482_sphinx3): mostly-independent iterations with *infrequent*
   dynamic conflicts, which Partial-DOALL restarts absorb more cheaply than
   HELIX's every-iteration synchronization. *)

let bwaves =
  Defs.mk ~name:"410_bwaves" ~category:Defs.Fp2006
    ~descr:"block tridiagonal solve: serial recurrence over parallel blocks"
    {src|
fn main() -> int {
  var n: int = 300;
  var bs: int = 12;
  var d: float[] = new float[n * bs];
  var rhs: float[] = new float[n * bs];
  var s: int = 31;
  for (var i: int = 0; i < n * bs; i = i + 1) {
    s = lcg_next(s);
    d[i] = lcg_float(s) + 1.5;
    s = lcg_next(s);
    rhs[i] = lcg_float(s);
  }
  // forward sweep: row i reads row i-1 (frequent memory LCD), the block
  // lanes inside each row are independent
  for (var i: int = 1; i < n; i = i + 1) {
    for (var k: int = 0; k < bs; k = k + 1) {
      rhs[i * bs + k] = rhs[i * bs + k] - 0.3 * rhs[(i - 1) * bs + k] / d[(i - 1) * bs + k];
    }
  }
  // back substitution
  for (var i: int = n - 2; i >= 0; i = i - 1) {
    for (var k: int = 0; k < bs; k = k + 1) {
      rhs[i * bs + k] = (rhs[i * bs + k] - 0.2 * rhs[(i + 1) * bs + k]) / d[i * bs + k];
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n * bs; i = i + 1) { check = check + rhs[i]; }
  print_float(check);
  return 0;
}
|src}

let milc =
  Defs.mk ~name:"433_milc" ~category:Defs.Fp2006
    ~descr:"SU(3)-style 3x3 complex matrix times vector over lattice sites"
    {src|
fn main() -> int {
  var sites: int = 1200;
  var m: float[] = new float[sites * 18];
  var vin: float[] = new float[sites * 6];
  var vout: float[] = new float[sites * 6];
  var s: int = 41;
  for (var i: int = 0; i < sites * 18; i = i + 1) {
    s = lcg_next(s);
    m[i] = lcg_float(s) - 0.5;
  }
  for (var i: int = 0; i < sites * 6; i = i + 1) {
    vin[i] = float((i * 11) % 9) * 0.11;
  }
  // sites fully independent: the paper's big DOALL winner shape
  for (var site: int = 0; site < sites; site = site + 1) {
    var mb: int = site * 18;
    var vb: int = site * 6;
    for (var row: int = 0; row < 3; row = row + 1) {
      var re: float = 0.0;
      var im: float = 0.0;
      for (var col: int = 0; col < 3; col = col + 1) {
        var ar: float = m[mb + (row * 3 + col) * 2];
        var ai: float = m[mb + (row * 3 + col) * 2 + 1];
        var br: float = vin[vb + col * 2];
        var bi: float = vin[vb + col * 2 + 1];
        re = re + ar * br - ai * bi;
        im = im + ar * bi + ai * br;
      }
      vout[vb + row * 2] = re;
      vout[vb + row * 2 + 1] = im;
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < sites * 6; i = i + 1) { check = check + vout[i]; }
  print_float(check);
  return 0;
}
|src}

let zeusmp =
  Defs.mk ~name:"434_zeusmp" ~category:Defs.Fp2006
    ~descr:"advection stencil sweeps with a serial time loop"
    {src|
fn main() -> int {
  var n: int = 4000;
  var q: float[] = new float[n];
  var qn: float[] = new float[n];
  var vel: float[] = new float[n];
  for (var i: int = 0; i < n; i = i + 1) {
    q[i] = float((i * 17) % 29) * 0.1;
    vel[i] = 0.2 + float(i % 3) * 0.05;
  }
  for (var t: int = 0; t < 20; t = t + 1) {
    for (var i: int = 1; i < n - 1; i = i + 1) {
      var flux: float = vel[i] * (q[i] - q[i - 1]);
      qn[i] = q[i] - 0.3 * flux + 0.05 * (q[i + 1] - 2.0 * q[i] + q[i - 1]);
    }
    for (var i: int = 1; i < n - 1; i = i + 1) { q[i] = qn[i]; }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { check = check + q[i]; }
  print_float(check);
  return 0;
}
|src}

let gromacs =
  Defs.mk ~name:"435_gromacs" ~category:Defs.Fp2006
    ~descr:"Lennard-Jones forces with sqrt in the inner loop"
    {src|
fn main() -> int {
  var atoms: int = 150;
  var px: float[] = new float[atoms];
  var py: float[] = new float[atoms];
  var fx: float[] = new float[atoms];
  var fy: float[] = new float[atoms];
  var s: int = 47;
  for (var i: int = 0; i < atoms; i = i + 1) {
    s = lcg_next(s);
    px[i] = lcg_float(s) * 12.0;
    s = lcg_next(s);
    py[i] = lcg_float(s) * 12.0;
  }
  for (var step: int = 0; step < 4; step = step + 1) {
    // per-atom accumulation over all others: reductions + pure sqrt calls
    for (var i: int = 0; i < atoms; i = i + 1) {
      var accx: float = 0.0;
      var accy: float = 0.0;
      for (var j: int = 0; j < atoms; j = j + 1) {
        if (j != i) {
          var dx: float = px[i] - px[j];
          var dy: float = py[i] - py[j];
          var r2: float = dx * dx + dy * dy + 0.01;
          var r: float = sqrt(r2);
          var lj: float = 1.0 / (r2 * r2 * r2) - 0.5 / (r2 * r2);
          accx = accx + lj * dx / r;
          accy = accy + lj * dy / r;
        }
      }
      fx[i] = accx;
      fy[i] = accy;
    }
    for (var i: int = 0; i < atoms; i = i + 1) {
      px[i] = px[i] + 0.001 * fx[i];
      py[i] = py[i] + 0.001 * fy[i];
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < atoms; i = i + 1) { check = check + px[i] + py[i]; }
  print_float(check);
  return 0;
}
|src}

let leslie3d =
  Defs.mk ~name:"437_leslie3d" ~category:Defs.Fp2006
    ~descr:"flux-difference stencil on a 2D slab"
    {src|
fn main() -> int {
  var w: int = 80;
  var h: int = 60;
  var rho: float[] = new float[w * h];
  var e: float[] = new float[w * h];
  var rnew: float[] = new float[w * h];
  for (var i: int = 0; i < w * h; i = i + 1) {
    rho[i] = 1.0 + float((i * 7) % 5) * 0.02;
    e[i] = 2.0 + float((i * 3) % 7) * 0.03;
  }
  for (var t: int = 0; t < 10; t = t + 1) {
    for (var y: int = 1; y < h - 1; y = y + 1) {
      for (var x: int = 1; x < w - 1; x = x + 1) {
        var c: int = y * w + x;
        var fe: float = 0.25 * (e[c + 1] - e[c - 1]);
        var fn2: float = 0.25 * (e[c + w] - e[c - w]);
        rnew[c] = rho[c] - 0.1 * (fe + fn2) + 0.02 * (rho[c + 1] + rho[c - 1] - 2.0 * rho[c]);
      }
    }
    for (var i: int = 0; i < w * h; i = i + 1) { rho[i] = rnew[i]; }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < w * h; i = i + 1) { check = check + rho[i]; }
  print_float(check);
  return 0;
}
|src}

let namd =
  Defs.mk ~name:"444_namd" ~category:Defs.Fp2006
    ~descr:"cutoff pair forces: conditional inner work, independent outer"
    {src|
fn main() -> int {
  var atoms: int = 400;
  var pairs: int = 14;
  var pos: float[] = new float[atoms];
  var chg: float[] = new float[atoms];
  var plist: int[] = new int[atoms * pairs];
  var energy: float[] = new float[atoms];
  var s: int = 53;
  for (var i: int = 0; i < atoms; i = i + 1) {
    s = lcg_next(s);
    pos[i] = lcg_float(s) * 20.0;
    s = lcg_next(s);
    chg[i] = lcg_float(s) - 0.5;
    for (var k: int = 0; k < pairs; k = k + 1) {
      s = lcg_next(s);
      plist[i * pairs + k] = lcg_pick(s, atoms);
    }
  }
  for (var i: int = 0; i < atoms; i = i + 1) {
    var acc: float = 0.0;
    for (var k: int = 0; k < pairs; k = k + 1) {
      var j: int = plist[i * pairs + k];
      var d: float = fabs(pos[i] - pos[j]);
      if (d < 5.0) {
        acc = acc + chg[i] * chg[j] / (d + 0.1);
      }
    }
    energy[i] = acc;
  }
  var check: float = 0.0;
  for (var i: int = 0; i < atoms; i = i + 1) { check = check + energy[i]; }
  print_float(check * 1000.0);
  return 0;
}
|src}

let dealii =
  Defs.mk ~name:"447_dealII" ~category:Defs.Fp2006
    ~descr:"FEM assembly: parallel element integrals, scatter-add with \
            shared-node conflicts"
    {src|
fn main() -> int {
  var elems: int = 500;
  var nodes: int = 520;
  var conn: int[] = new int[elems * 4];
  var globalv: float[] = new float[nodes];
  var s: int = 61;
  for (var e: int = 0; e < elems; e = e + 1) {
    // neighbouring elements share nodes occasionally
    conn[e * 4] = e % nodes;
    conn[e * 4 + 1] = (e + 1) % nodes;
    s = lcg_next(s);
    conn[e * 4 + 2] = lcg_pick(s, nodes);
    s = lcg_next(s);
    conn[e * 4 + 3] = lcg_pick(s, nodes);
  }
  for (var e: int = 0; e < elems; e = e + 1) {
    // local integral: reduction over quadrature points
    var locv: float = 0.0;
    for (var qp: int = 0; qp < 8; qp = qp + 1) {
      locv = locv + float((e * 3 + qp) % 7) * 0.125;
    }
    // scatter-add: writes collide when elements share nodes (RAW across
    // iterations is infrequent)
    for (var k: int = 0; k < 4; k = k + 1) {
      var nd: int = conn[e * 4 + k];
      globalv[nd] = globalv[nd] + locv * 0.25;
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < nodes; i = i + 1) { check = check + globalv[i]; }
  print_float(check);
  return 0;
}
|src}

let soplex =
  Defs.mk ~name:"450_soplex" ~category:Defs.Fp2006
    ~descr:"simplex iterations: min-ratio reductions and rank-1 updates with \
            infrequent degeneracies (PDOALL-friendly in the paper's Fig. 4)"
    {src|
fn main() -> int {
  var rows: int = 90;
  var cols: int = 120;
  var a: float[] = new float[rows * cols];
  var price: float[] = new float[cols];
  var basis: float[] = new float[rows];
  var s: int = 67;
  for (var i: int = 0; i < rows * cols; i = i + 1) {
    s = lcg_next(s);
    a[i] = lcg_float(s) - 0.4;
  }
  for (var j: int = 0; j < cols; j = j + 1) { price[j] = 1.0; }
  for (var i: int = 0; i < rows; i = i + 1) { basis[i] = 10.0 + float(i % 7); }
  var check: float = 0.0;
  for (var iter: int = 0; iter < 25; iter = iter + 1) {
    // pricing: independent per column with a min reduction at the end
    var bestj: int = 0;
    var bestv: float = 1000000.0;
    for (var j: int = 0; j < cols; j = j + 1) {
      var red: float = price[j];
      for (var i: int = 0; i < rows; i = i + 1) {
        red = red - a[i * cols + j] * 0.01;
      }
      if (red < bestv) { bestv = red; bestj = j; }
    }
    // ratio test over rows: min reduction
    var leave: int = 0;
    var ratio: float = 1000000.0;
    for (var i: int = 0; i < rows; i = i + 1) {
      var coef: float = a[i * cols + bestj];
      if (coef > 0.05) {
        var r: float = basis[i] / coef;
        if (r < ratio) { ratio = r; leave = i; }
      }
    }
    // rank-1 update touches one row + the price of one column: conflicts
    // across simplex iterations are infrequent
    for (var j: int = 0; j < cols; j = j + 1) {
      a[leave * cols + j] = a[leave * cols + j] * 0.98;
    }
    basis[leave] = basis[leave] - ratio * 0.1;
    price[bestj] = price[bestj] + 0.05;
    check = check + bestv + ratio * 0.001;
  }
  print_float(check);
  return 0;
}
|src}

let povray =
  Defs.mk ~name:"453_povray" ~category:Defs.Fp2006
    ~descr:"ray-sphere tracing: independent pixels, nearest-hit reductions, \
            pure sqrt calls"
    {src|
fn main() -> int {
  var w: int = 48;
  var h: int = 36;
  var nsph: int = 12;
  var sx: float[] = new float[nsph];
  var sy: float[] = new float[nsph];
  var sz: float[] = new float[nsph];
  var sr: float[] = new float[nsph];
  var s: int = 71;
  for (var i: int = 0; i < nsph; i = i + 1) {
    s = lcg_next(s);
    sx[i] = lcg_float(s) * 8.0 - 4.0;
    s = lcg_next(s);
    sy[i] = lcg_float(s) * 6.0 - 3.0;
    s = lcg_next(s);
    sz[i] = lcg_float(s) * 5.0 + 4.0;
    s = lcg_next(s);
    sr[i] = lcg_float(s) * 0.8 + 0.3;
  }
  var img: float[] = new float[w * h];
  for (var y: int = 0; y < h; y = y + 1) {
    for (var x: int = 0; x < w; x = x + 1) {
      var dx: float = (float(x) - float(w) * 0.5) * 0.05;
      var dy: float = (float(y) - float(h) * 0.5) * 0.05;
      var dz: float = 1.0;
      var dlen: float = sqrt(dx * dx + dy * dy + 1.0);
      dx = dx / dlen; dy = dy / dlen; dz = dz / dlen;
      var nearest: float = 1000000.0;
      for (var i: int = 0; i < nsph; i = i + 1) {
        var b: float = dx * sx[i] + dy * sy[i] + dz * sz[i];
        var c: float = sx[i] * sx[i] + sy[i] * sy[i] + sz[i] * sz[i] - sr[i] * sr[i];
        var disc: float = b * b - c;
        if (disc > 0.0) {
          var t: float = b - sqrt(disc);
          if (t > 0.0 && t < nearest) { nearest = t; }
        }
      }
      if (nearest < 1000000.0) { img[y * w + x] = 10.0 / nearest; }
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < w * h; i = i + 1) { check = check + img[i]; }
  print_float(check);
  return 0;
}
|src}

let lbm =
  Defs.mk ~name:"470_lbm" ~category:Defs.Fp2006
    ~descr:"lattice-Boltzmann stream + collide over a 1D channel"
    {src|
fn main() -> int {
  var n: int = 1500;
  var f0: float[] = new float[n];
  var fp: float[] = new float[n];
  var fm: float[] = new float[n];
  var nf0: float[] = new float[n];
  var nfp: float[] = new float[n];
  var nfm: float[] = new float[n];
  for (var i: int = 0; i < n; i = i + 1) {
    f0[i] = 0.6;
    fp[i] = 0.2 + float(i % 5) * 0.01;
    fm[i] = 0.2;
  }
  for (var t: int = 0; t < 16; t = t + 1) {
    for (var i: int = 1; i < n - 1; i = i + 1) {
      // stream from neighbours, collide toward equilibrium
      var rho: float = f0[i] + fp[i - 1] + fm[i + 1];
      var u: float = (fp[i - 1] - fm[i + 1]) / rho;
      var eq0: float = rho * 0.6666 * (1.0 - 1.5 * u * u);
      var eqp: float = rho * 0.1666 * (1.0 + 3.0 * u + 3.0 * u * u);
      var eqm: float = rho * 0.1666 * (1.0 - 3.0 * u + 3.0 * u * u);
      nf0[i] = f0[i] + 0.8 * (eq0 - f0[i]);
      nfp[i] = fp[i - 1] + 0.8 * (eqp - fp[i - 1]);
      nfm[i] = fm[i + 1] + 0.8 * (eqm - fm[i + 1]);
    }
    for (var i: int = 1; i < n - 1; i = i + 1) {
      f0[i] = nf0[i]; fp[i] = nfp[i]; fm[i] = nfm[i];
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { check = check + f0[i] + fp[i] + fm[i]; }
  print_float(check);
  return 0;
}
|src}

let sphinx3 =
  Defs.mk ~name:"482_sphinx" ~category:Defs.Fp2006
    ~descr:"GMM acoustic scoring: dot-product reductions with an infrequent \
            renormalization conflict (PDOALL-friendly in the paper's Fig. 4)"
    {src|
fn main() -> int {
  var frames: int = 60;
  var mixtures: int = 32;
  var dims: int = 24;
  var mean: float[] = new float[mixtures * dims];
  var feat: float[] = new float[dims];
  var score: float[] = new float[mixtures];
  var s: int = 73;
  for (var i: int = 0; i < mixtures * dims; i = i + 1) {
    s = lcg_next(s);
    mean[i] = lcg_float(s) * 2.0 - 1.0;
  }
  var beam: float[] = new float[1];
  beam[0] = 0.0 - 1000000.0;
  var check: float = 0.0;
  for (var fr: int = 0; fr < frames; fr = fr + 1) {
    // the beam-pruning threshold is read at the very start of the frame;
    // it was written (rarely) near the end of some earlier frame — the
    // producer-late/consumer-early shape that taxes HELIX synchronization
    // every frame while PDOALL restarts only on the rare updates
    var prune: float = beam[0];
    for (var d: int = 0; d < dims; d = d + 1) {
      feat[d] = float(((fr + 1) * (d + 3)) % 11) * 0.18 - 0.9;
    }
    // per-mixture Mahalanobis-ish distance: reduction inside, mixtures
    // independent
    for (var m: int = 0; m < mixtures; m = m + 1) {
      var acc: float = 0.0;
      for (var d: int = 0; d < dims; d = d + 1) {
        var diff: float = feat[d] - mean[m * dims + d];
        acc = acc - diff * diff;
      }
      score[m] = acc;
    }
    var frame_best: float = 0.0 - 1000000.0;
    for (var m: int = 0; m < mixtures; m = m + 1) {
      if (score[m] > prune - 50.0 && score[m] > frame_best) {
        frame_best = score[m];
      }
    }
    // infrequent cross-frame update: only when a new global best appears
    if (frame_best > beam[0]) {
      beam[0] = frame_best;
      check = check + 1.0;
    }
    check = check + frame_best * 0.01;
  }
  print_float(check);
  return 0;
}
|src}

let benchmarks () =
  [
    bwaves; milc; zeusmp; gromacs; leslie3d; namd; dealii; soplex; povray; lbm;
    sphinx3;
  ]
