(** Natural-loop detection and the loop forest (the LLVM LoopInfo analogue).
    A back edge is an edge latch->header where the header dominates the
    latch; loops sharing a header are merged. Loop ids ([lid]) index into the
    forest and are stable for a given function shape. *)

module Int_set : Set.S with type elt = int

type loop = {
  lid : int;
  header : int;
  mutable body : Int_set.t;  (** block ids, including the header *)
  mutable latches : int list;
  mutable parent : int option;  (** lid of the immediately enclosing loop *)
  mutable children : int list;
  mutable depth : int;  (** 1 for top-level loops *)
}

type t = {
  cfg : Graph.t;
  loops : loop array;
  innermost : int array;
  header_loop : int array;
  irreducible_edges : (int * int) list;
      (** retreating edges whose target does not dominate the source: the
          enclosing region is irreducible and forms no natural loop *)
}

val compute : Graph.t -> Dom.t -> t

val num_loops : t -> int

val loop : t -> int -> loop

val loops : t -> loop list

(** Innermost loop containing a block, if any. *)
val innermost_loop : t -> int -> int option

(** The loop headed at this block, if any. *)
val loop_of_header : t -> int -> int option

val contains : t -> int -> int -> bool

val top_level_loops : t -> loop list

(** Exit edges (from-block inside, to-block outside). *)
val exit_edges : t -> int -> (int * int) list

val exit_blocks : t -> int -> int list

(** The canonical preheader: the unique out-of-loop predecessor of the header
    whose only successor is the header. *)
val preheader : t -> int -> int option

(** Loop-simplify form: preheader + single latch + dedicated exits. *)
val is_canonical : t -> int -> bool
