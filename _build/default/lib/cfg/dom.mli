(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm
    ("A Simple, Fast Dominance Algorithm"). *)

type t

val compute : Graph.t -> t

(** Immediate dominator; [None] for the entry block and unreachable blocks. *)
val idom : t -> int -> int option

(** Dominator-tree children. *)
val children : t -> int -> int list

(** Depth in the dominator tree; entry = 0. *)
val depth : t -> int -> int

(** [dominates t a b]: does block [a] dominate block [b]? Reflexive; false
    for unreachable [b]. *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool
