(** Dominance-based SSA validity: every use of an instruction result must be
    dominated by its definition (phi uses: the definition must dominate the
    incoming predecessor). Complements the structural checks of
    {!Ir.Verifier}. Unreachable code is exempt. *)

type error = { in_func : string; use_instr : int; operand : int; reason : string }

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val check_func : Ir.Func.t -> error list

val check_module : Ir.Func.modul -> error list
