(* Control-flow graph view of a function: successor/predecessor arrays and
   depth-first orders. Rebuilt on demand after transforms. *)

type t = {
  fn : Ir.Func.t;
  succ : int list array; (* by block id *)
  pred : int list array;
  rpo : int array; (* reverse postorder of reachable blocks, entry first *)
  rpo_index : int array; (* block id -> position in rpo, -1 if unreachable *)
}

let build (fn : Ir.Func.t) : t =
  let n = Ir.Func.num_blocks fn in
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  for b = 0 to n - 1 do
    succ.(b) <- Ir.Func.successors fn b
  done;
  Array.iteri (fun b ss -> List.iter (fun s -> pred.(s) <- b :: pred.(s)) ss) succ;
  Array.iteri (fun s ps -> pred.(s) <- List.rev ps) pred;
  (* postorder DFS from entry *)
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succ.(b);
      post := b :: !post
    end
  in
  if n > 0 then dfs fn.Ir.Func.entry;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  { fn; succ; pred; rpo; rpo_index }

let successors t b = t.succ.(b)

let predecessors t b = t.pred.(b)

let num_blocks t = Array.length t.succ

let is_reachable t b = t.rpo_index.(b) >= 0

let reachable_blocks t = Array.to_list t.rpo

(* Blocks never reached from entry; transforms may want to ignore them. *)
let unreachable_blocks t =
  let out = ref [] in
  for b = num_blocks t - 1 downto 0 do
    if not (is_reachable t b) then out := b :: !out
  done;
  !out

let entry t = t.fn.Ir.Func.entry

(* An edge a->b is critical if a has several successors and b several
   predecessors; loop-simplify must split such edges to create dedicated
   preheaders/exits. *)
let is_critical_edge t a b =
  List.length t.succ.(a) > 1 && List.length t.pred.(b) > 1
