(* Natural-loop detection and the loop forest. A back edge is an edge
   latch->header where header dominates latch; the natural loop of a header
   is the union over its back edges of the blocks that reach the latch
   without passing through the header. Loops sharing a header are merged,
   matching LLVM's LoopInfo. *)

module Int_set = Set.Make (Int)

type loop = {
  lid : int;
  header : int;
  mutable body : Int_set.t; (* includes header *)
  mutable latches : int list;
  mutable parent : int option; (* lid of the immediately enclosing loop *)
  mutable children : int list; (* lids, innermost-first discovery order *)
  mutable depth : int; (* 1 for top-level loops *)
}

type t = {
  cfg : Graph.t;
  loops : loop array;
  innermost : int array; (* block id -> innermost loop lid, or -1 *)
  header_loop : int array; (* block id -> lid of loop headed here, or -1 *)
  irreducible_edges : (int * int) list; (* retreating edges whose target does
                                           not dominate the source *)
}

let compute (cfg : Graph.t) (dom : Dom.t) : t =
  let n = Graph.num_blocks cfg in
  (* Find back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  let irreducible = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if Dom.dominates dom s b then
            let latches = Option.value ~default:[] (Hashtbl.find_opt by_header s) in
            Hashtbl.replace by_header s (b :: latches))
        (Graph.successors cfg b))
    (Graph.reachable_blocks cfg);
  (* Irreducibility detection: an edge u->v is retreating if rpo(v) <= rpo(u);
     if additionally v does not dominate u, the region is irreducible. *)
  let rpo_pos = Array.make n max_int in
  List.iteri (fun i b -> rpo_pos.(b) <- i) (Graph.reachable_blocks cfg);
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if rpo_pos.(v) <= rpo_pos.(u) && not (Dom.dominates dom v u) then
            irreducible := (u, v) :: !irreducible)
        (Graph.successors cfg u))
    (Graph.reachable_blocks cfg);
  (* Build each natural loop body by reverse reachability from the latches. *)
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) by_header [] in
  let headers = List.sort compare headers in
  let loops =
    List.mapi
      (fun lid header ->
        let latches = List.rev (Hashtbl.find by_header header) in
        let body = ref (Int_set.singleton header) in
        let rec pull b =
          if not (Int_set.mem b !body) then begin
            body := Int_set.add b !body;
            List.iter pull (Graph.predecessors cfg b)
          end
        in
        List.iter pull latches;
        { lid; header; body = !body; latches; parent = None; children = []; depth = 0 })
      headers
  in
  let loops = Array.of_list loops in
  (* Nesting: the parent of loop L is the smallest loop strictly containing
     L's header (other than L itself). Natural loops of a reducible CFG are
     disjoint or nested, so containment of the header implies containment of
     the body. *)
  Array.iter
    (fun l ->
      let best = ref None in
      Array.iter
        (fun m ->
          if m.lid <> l.lid && Int_set.mem l.header m.body then
            match !best with
            | Some b when Int_set.cardinal b.body <= Int_set.cardinal m.body -> ()
            | _ -> best := Some m)
        loops;
      match !best with
      | Some p ->
          l.parent <- Some p.lid;
          p.children <- l.lid :: p.children
      | None -> ())
    loops;
  Array.iter (fun l -> l.children <- List.rev l.children) loops;
  (* Depths: walk from roots. *)
  let rec set_depth d lid =
    let l = loops.(lid) in
    l.depth <- d;
    List.iter (set_depth (d + 1)) l.children
  in
  Array.iter (fun l -> if l.parent = None then set_depth 1 l.lid) loops;
  (* Innermost loop per block: smallest body containing the block. *)
  let innermost = Array.make n (-1) in
  for b = 0 to n - 1 do
    let best = ref None in
    Array.iter
      (fun l ->
        if Int_set.mem b l.body then
          match !best with
          | Some m when Int_set.cardinal m.body <= Int_set.cardinal l.body -> ()
          | _ -> best := Some l)
      loops;
    match !best with Some l -> innermost.(b) <- l.lid | None -> ()
  done;
  let header_loop = Array.make n (-1) in
  Array.iter (fun l -> header_loop.(l.header) <- l.lid) loops;
  { cfg; loops; innermost; header_loop; irreducible_edges = !irreducible }

let num_loops t = Array.length t.loops

let loop t lid = t.loops.(lid)

let loops t = Array.to_list t.loops

let innermost_loop t b = if t.innermost.(b) < 0 then None else Some t.innermost.(b)

let loop_of_header t b = if t.header_loop.(b) < 0 then None else Some t.header_loop.(b)

let contains t lid b = Int_set.mem b t.loops.(lid).body

let top_level_loops t =
  List.filter (fun l -> l.parent = None) (Array.to_list t.loops)

(* Exit edges: (from-block inside, to-block outside). *)
let exit_edges t lid =
  let l = t.loops.(lid) in
  Int_set.fold
    (fun b acc ->
      List.fold_left
        (fun acc s -> if Int_set.mem s l.body then acc else (b, s) :: acc)
        acc (Graph.successors t.cfg b))
    l.body []
  |> List.rev

let exit_blocks t lid =
  List.sort_uniq compare (List.map snd (exit_edges t lid))

(* The preheader, if canonical: a unique out-of-loop predecessor of the
   header whose only successor is the header. *)
let preheader t lid =
  let l = t.loops.(lid) in
  let outside_preds =
    List.filter (fun p -> not (Int_set.mem p l.body)) (Graph.predecessors t.cfg l.header)
  in
  match outside_preds with
  | [ p ] when Graph.successors t.cfg p = [ l.header ] -> Some p
  | _ -> None

(* Whether the loop is in canonical (loop-simplify) form. *)
let is_canonical t lid =
  let l = t.loops.(lid) in
  preheader t lid <> None
  && List.length l.latches = 1
  && List.for_all
       (fun e -> List.for_all (fun p -> Int_set.mem p l.body) (Graph.predecessors t.cfg e))
       (exit_blocks t lid)
