(** Control-flow-graph view of a function: successor/predecessor lists and
    reverse postorder. Rebuild after any transform; views do not track
    mutation. *)

type t

val build : Ir.Func.t -> t

val successors : t -> int -> int list

val predecessors : t -> int -> int list

val num_blocks : t -> int

val is_reachable : t -> int -> bool

(** Reachable blocks in reverse postorder, entry first. *)
val reachable_blocks : t -> int list

val unreachable_blocks : t -> int list

val entry : t -> int

(** [is_critical_edge t a b] assumes the edge a->b exists: true when [a] has
    several successors and [b] several predecessors. *)
val is_critical_edge : t -> int -> int -> bool
