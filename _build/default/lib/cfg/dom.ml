(* Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm
   ("A Simple, Fast Dominance Algorithm"). Operates on reverse postorder
   indices for the intersect walk. *)

type t = {
  cfg : Graph.t;
  idom : int array; (* block id -> immediate dominator block id; entry -> itself *)
  children : int list array; (* dominator-tree children *)
  depth : int array; (* depth in the dominator tree, entry = 0 *)
}

let compute (cfg : Graph.t) : t =
  let n = Graph.num_blocks cfg in
  let entry = Graph.entry cfg in
  let rpo = Array.of_list (Graph.reachable_blocks cfg) in
  let rpo_pos = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_pos.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_pos.(!a) > rpo_pos.(!b) do
        a := idom.(!a)
      done;
      while rpo_pos.(!b) > rpo_pos.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) >= 0) (Graph.predecessors cfg b)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  let children = Array.make n [] in
  let depth = Array.make n 0 in
  Array.iter
    (fun b -> if b <> entry && idom.(b) >= 0 then children.(idom.(b)) <- b :: children.(idom.(b)))
    rpo;
  (* rpo order guarantees parents are visited before children *)
  Array.iter (fun b -> if b <> entry && idom.(b) >= 0 then depth.(b) <- depth.(idom.(b)) + 1) rpo;
  Array.iteri (fun i cs -> children.(i) <- List.rev cs) children;
  { cfg; idom; children; depth }

let idom t b = if b = Graph.entry t.cfg then None else if t.idom.(b) < 0 then None else Some t.idom.(b)

let children t b = t.children.(b)

let depth t b = t.depth.(b)

(* [dominates t a b] : does block [a] dominate block [b]? (reflexive) *)
let dominates t a b =
  let rec walk b = if b = a then true else match idom t b with None -> false | Some p -> walk p
  in
  t.idom.(b) >= 0 && walk b

let strictly_dominates t a b = a <> b && dominates t a b
