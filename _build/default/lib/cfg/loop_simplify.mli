(** Loop canonicalization, mirroring LLVM's -loopsimplify: after [run_func]
    every natural loop has a dedicated preheader, a single latch and
    dedicated exit blocks, so register LCDs appear as header phis with
    exactly two incoming edges. Preserves semantics; adds blocks. *)

(** Redirect the edges from [preds] to [tgt] through a fresh block, moving
    the relevant phi entries; returns the new block id. Exposed for tests. *)
val split_preds : Ir.Func.t -> tgt:int -> preds:int list -> name:string -> int

val run_func : Ir.Func.t -> unit

val run_module : Ir.Func.modul -> unit
