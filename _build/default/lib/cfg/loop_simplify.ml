(* Loop canonicalization, mirroring LLVM's -loopsimplify: every loop gets a
   dedicated preheader, a single latch, and dedicated exit blocks (exits whose
   predecessors are all inside the loop). The limit-study driver runs this
   before classification so loops are uniquely identified by their headers and
   register LCDs appear as header phis with exactly two incoming edges
   (preheader, latch). *)

open Ir.Types

(* Redirect the edges from every block in [preds] to [tgt] through a fresh
   block. Header/exit phis in [tgt] are rewritten: their entries for [preds]
   move into the fresh block (as a new phi there when |preds| > 1). Returns
   the new block id. *)
let split_preds (fn : Ir.Func.t) ~tgt ~preds ~name =
  let mid = Ir.Func.add_block ~name fn in
  (* Rewrite phis of tgt. *)
  List.iter
    (fun (phi : Ir.Instr.t) ->
      match phi.Ir.Instr.kind with
      | Ir.Instr.Phi incoming ->
          let moved, kept =
            List.partition (fun (p, _) -> List.mem p preds) (Array.to_list incoming)
          in
          if moved <> [] then begin
            let merged_value =
              match moved with
              | [ (_, v) ] -> v
              | _ ->
                  let ty =
                    match phi.Ir.Instr.ty with Some t -> t | None -> I64
                  in
                  Reg
                    (Ir.Func.prepend_instr fn mid ~ty:(Some ty)
                       (Ir.Instr.Phi (Array.of_list moved)))
            in
            phi.Ir.Instr.kind <-
              Ir.Instr.Phi (Array.of_list (kept @ [ (mid, merged_value) ]))
          end
      | _ -> ())
    (Ir.Func.phis fn tgt);
  (* Terminate mid with a jump to tgt, then retarget the preds. *)
  ignore (Ir.Func.append_instr fn mid ~ty:None (Ir.Instr.Br tgt));
  List.iter
    (fun p ->
      match Ir.Func.terminator fn p with
      | Some term ->
          term.Ir.Instr.kind <-
            Ir.Instr.retarget_successor ~from_:tgt ~to_:mid term.Ir.Instr.kind
      | None -> ())
    preds;
  mid

(* One canonicalization step; returns true if the function changed. *)
let step (fn : Ir.Func.t) : bool =
  let cfg = Graph.build fn in
  let dom = Dom.compute cfg in
  let li = Loopinfo.compute cfg dom in
  let fix_loop (l : Loopinfo.loop) =
    let lid = l.Loopinfo.lid in
    let in_loop b = Loopinfo.contains li lid b in
    if Loopinfo.preheader li lid = None then begin
      let outside =
        List.filter (fun p -> not (in_loop p)) (Graph.predecessors cfg l.Loopinfo.header)
      in
      (* A header with no outside predecessor is unreachable-loop weirdness;
         nothing to canonicalize. *)
      if outside = [] then false
      else begin
        ignore (split_preds fn ~tgt:l.Loopinfo.header ~preds:outside ~name:"preheader");
        true
      end
    end
    else if List.length l.Loopinfo.latches > 1 then begin
      ignore
        (split_preds fn ~tgt:l.Loopinfo.header ~preds:l.Loopinfo.latches ~name:"latch");
      true
    end
    else begin
      let bad_exit =
        List.find_opt
          (fun e -> List.exists (fun p -> not (in_loop p)) (Graph.predecessors cfg e))
          (Loopinfo.exit_blocks li lid)
      in
      match bad_exit with
      | Some e ->
          let inside = List.filter in_loop (Graph.predecessors cfg e) in
          ignore (split_preds fn ~tgt:e ~preds:inside ~name:"loopexit");
          true
      | None -> false
    end
  in
  let rec try_loops = function
    | [] -> false
    | l :: rest -> if fix_loop l then true else try_loops rest
  in
  try_loops (Loopinfo.loops li)

let run_func (fn : Ir.Func.t) =
  (* Each step adds one block and fixes one defect; defects are finite. *)
  let budget = ref (4 * (Ir.Func.num_blocks fn + 8)) in
  while step fn && !budget > 0 do
    decr budget
  done

let run_module (m : Ir.Func.modul) = List.iter run_func m.Ir.Func.funcs
