lib/cfg/ssa_check.ml: Array Dom Format Graph Hashtbl Ir List Printf
