lib/cfg/graph.mli: Ir
