lib/cfg/loop_simplify.ml: Array Dom Graph Ir List Loopinfo
