lib/cfg/loopinfo.mli: Dom Graph Set
