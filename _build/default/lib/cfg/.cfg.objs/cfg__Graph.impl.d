lib/cfg/graph.ml: Array Ir List
