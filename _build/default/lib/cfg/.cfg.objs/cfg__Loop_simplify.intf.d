lib/cfg/loop_simplify.mli: Ir
