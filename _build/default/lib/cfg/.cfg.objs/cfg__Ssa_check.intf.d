lib/cfg/ssa_check.mli: Format Ir
