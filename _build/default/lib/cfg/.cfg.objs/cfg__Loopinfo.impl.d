lib/cfg/loopinfo.ml: Array Dom Graph Hashtbl Int List Option Set
