(** Reduction recurrence descriptors, mirroring LLVM's RecurrenceDescriptor:
    loop-header phis whose only in-loop role is an accumulation can be
    decoupled from the loop's critical path under -reduc1 (paper §II-A).

    Recognized shapes: plain binop chains ([s = s + v]), subtraction
    accumulators, min/max via the compare+select idiom, conditional
    accumulation through if-merges or selects, and accumulators threaded
    through inner-loop header phis (nested reductions). Rejected: value
    resets, accumulators whose running value feeds other computation
    (escapes), and mixed operation kinds. *)

type kind =
  | Sum
  | Prod
  | Band
  | Bor
  | Bxor
  | Fsum
  | Fprod
  | Min
  | Max
  | Fmin
  | Fmax

val kind_name : kind -> string

type descriptor = {
  phi : int;  (** the header phi's instruction id *)
  kind : kind;
  chain : int list;  (** instruction ids forming the accumulation chain *)
}

(** [detect fn li phi_id] returns the descriptor if the header phi [phi_id]
    is a decoupleable reduction of its loop, [None] otherwise. *)
val detect : Ir.Func.t -> Cfg.Loopinfo.t -> int -> descriptor option
