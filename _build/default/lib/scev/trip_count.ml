(* Exit (trip) count computation — the back-edge-taken-count role of LLVM's
   ScalarEvolution. For a canonical loop whose header compares an affine IV
   with constant start and step against a constant bound, the number of
   header arrivals is known exactly. Conservative: anything else is None. *)

open Ir.Types

(* Count of header arrivals (body executions + the final failing test) for
   iv = {start,+,step} compared against bound with [op], assuming the loop
   exits when the comparison fails and runs while it holds. *)
let count_affine ~start ~step ~bound ~(op : Ir.Instr.icmp) : int64 option =
  let open Int64 in
  let ceil_div a b = if rem a b = 0L then div a b else add (div a b) 1L in
  let body_execs upper =
    (* iterations with start + k*step < upper, k >= 0 *)
    if step <= 0L then None
    else if start >= upper then Some 0L
    else Some (ceil_div (sub upper start) step)
  in
  let body_execs_down lower =
    if step >= 0L then None
    else if start <= lower then Some 0L
    else Some (ceil_div (sub start lower) (neg step))
  in
  let bodies =
    match op with
    | Ir.Instr.Islt -> body_execs bound
    | Ir.Instr.Isle -> body_execs (add bound 1L)
    | Ir.Instr.Isgt -> body_execs_down bound
    | Ir.Instr.Isge -> body_execs_down (sub bound 1L)
    | Ir.Instr.Ine ->
        (* iv != bound: exact only when the stride lands on the bound *)
        if step <> 0L && rem (sub bound start) step = 0L && div (sub bound start) step >= 0L
        then Some (div (sub bound start) step)
        else None
    | Ir.Instr.Ieq -> None
  in
  Option.map (fun b -> add b 1L) bodies

(* Header-arrival count for loop [lid], when its sole exit is governed by an
   affine IV against a constant bound. *)
let of_loop (fn : Ir.Func.t) (li : Cfg.Loopinfo.t) (scev : Analysis.t) (lid : int) :
    int64 option =
  let l = Cfg.Loopinfo.loop li lid in
  match Ir.Func.terminator fn l.Cfg.Loopinfo.header with
  | Some { Ir.Instr.kind = Ir.Instr.Cond_br (Reg cid, l1, l2); _ } -> (
      let in_loop b = Cfg.Loopinfo.contains li lid b in
      (* the header must be the only exiting block for the count to be the
         trip count *)
      let exits_elsewhere =
        List.exists (fun (b, _) -> b <> l.Cfg.Loopinfo.header) (Cfg.Loopinfo.exit_edges li lid)
      in
      if exits_elsewhere then None
      else
        match Ir.Func.kind fn cid with
        | Ir.Instr.Icmp (op, a, b) -> (
            (* normalize so the loop runs while the comparison holds *)
            let flip = function
              | Ir.Instr.Islt -> Ir.Instr.Isge
              | Ir.Instr.Isle -> Ir.Instr.Isgt
              | Ir.Instr.Isgt -> Ir.Instr.Isle
              | Ir.Instr.Isge -> Ir.Instr.Islt
              | Ir.Instr.Ieq -> Ir.Instr.Ine
              | Ir.Instr.Ine -> Ir.Instr.Ieq
            in
            let op = if in_loop l1 then op else flip op in
            ignore l2;
            let sa = Analysis.scev_of_value scev a in
            let sb = Analysis.scev_of_value scev b in
            let affine_const = function
              | Expr.Add_rec { start = Expr.Const s; step = Expr.Const t; loop }
                when Cfg.Loopinfo.loop_of_header li loop = Some lid ->
                  Some (s, t)
              | _ -> None
            in
            match (affine_const (Expr.simplify sa), Expr.simplify sb) with
            | Some (start, step), Expr.Const bound -> count_affine ~start ~step ~bound ~op
            | _ -> (
                (* bound on the left: iv on the right, mirror the compare *)
                let mirror = function
                  | Ir.Instr.Islt -> Ir.Instr.Isgt
                  | Ir.Instr.Isle -> Ir.Instr.Isge
                  | Ir.Instr.Isgt -> Ir.Instr.Islt
                  | Ir.Instr.Isge -> Ir.Instr.Isle
                  | (Ir.Instr.Ieq | Ir.Instr.Ine) as o -> o
                in
                match (Expr.simplify sa, affine_const (Expr.simplify sb)) with
                | Expr.Const bound, Some (start, step) ->
                    count_affine ~start ~step ~bound ~op:(mirror op)
                | _ -> None))
        | _ -> None)
  | _ -> None
