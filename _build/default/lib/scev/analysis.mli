(** Scalar-evolution analysis over a function — the ScalarEvolution-pass
    stand-in. The limit study uses it to decide which register LCDs are
    "computable": reproducible thread-locally from an iteration index
    (paper §II-A). *)

type t

val create : Ir.Func.t -> Cfg.Loopinfo.t -> t

(** Is the expression invariant with respect to loop [lid]? *)
val is_invariant : t -> Expr.t -> lid:int -> bool

(** Computable thread-locally inside loop [lid]: unknown leaves invariant,
    add-recurrences stepping with [lid] or enclosing loops only. *)
val is_computable_in : t -> Expr.t -> lid:int -> bool

(** Memoized SCEV of a value; loop-header phis are solved as recurrences. *)
val scev_of_value : t -> Ir.Types.value -> Expr.t

val scev_of_reg : t -> int -> Expr.t

type phi_class =
  | Computable of Expr.t  (** IV / MIV / polynomial add-recurrence *)
  | Computable_shifted of Expr.t
      (** x_(k+1) = f(k) with f self-free and computable: reproducible from
          the iteration index after the first iteration *)
  | Non_computable

val classify_header_phi : t -> int -> phi_class
