lib/scev/analysis.ml: Array Cfg Expr Hashtbl Int64 Ir List
