lib/scev/analysis.mli: Cfg Expr Ir
