lib/scev/recurrence.ml: Array Cfg Hashtbl Ir List
