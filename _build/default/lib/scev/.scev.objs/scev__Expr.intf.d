lib/scev/expr.mli: Format Ir
