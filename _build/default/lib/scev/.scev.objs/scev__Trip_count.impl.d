lib/scev/trip_count.ml: Analysis Cfg Expr Int64 Ir List Option
