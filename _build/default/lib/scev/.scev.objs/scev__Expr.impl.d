lib/scev/expr.ml: Format Hashtbl Int Int64 Ir List Option Printf Stdlib
