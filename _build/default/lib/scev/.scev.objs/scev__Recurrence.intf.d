lib/scev/recurrence.mli: Cfg Ir
