(* Scalar-evolution analysis over a function: assigns each integer SSA value
   an Expr.t, detecting induction variables (add-recurrences), mutual and
   polynomial IVs. This is the stand-in for LLVM's ScalarEvolution pass; the
   limit study uses it to decide which register LCDs are "computable" —
   reproducible thread-locally from an iteration index (paper §II-A). *)

open Ir.Types

type t = {
  fn : Ir.Func.t;
  li : Cfg.Loopinfo.t;
  memo : (int, Expr.t) Hashtbl.t; (* instruction id -> scev *)
}

let create fn li = { fn; li; memo = Hashtbl.create 64 }

let def_block t id = (Ir.Func.instr t.fn id).Ir.Instr.block

(* Is [e] invariant with respect to loop [lid]? Constants always; unknowns
   when their definition lives outside the loop body; add-recurrences only
   when they belong to a loop that does not contain [lid]'s blocks — for our
   purposes, when their header is outside [lid]'s body. *)
let rec is_invariant t e ~lid =
  match e with
  | Expr.Const _ -> true
  | Expr.Cannot | Expr.Self _ -> false
  | Expr.Unknown (Const _) | Expr.Unknown (Param _) | Expr.Unknown (Global _) -> true
  | Expr.Unknown (Reg id) -> not (Cfg.Loopinfo.contains t.li lid (def_block t id))
  | Expr.Add ts | Expr.Mul ts -> List.for_all (fun x -> is_invariant t x ~lid) ts
  | Expr.Add_rec { loop = header; _ } -> not (Cfg.Loopinfo.contains t.li lid header)

(* Does [e] describe a value computable thread-locally inside loop [lid] from
   the iteration index alone? Unknown leaves must be loop-invariant;
   add-recurrences may step with [lid] itself or with enclosing loops. *)
let rec is_computable_in t e ~lid =
  match e with
  | Expr.Const _ -> true
  | Expr.Cannot | Expr.Self _ -> false
  | Expr.Unknown (Const _) | Expr.Unknown (Param _) | Expr.Unknown (Global _) -> true
  | Expr.Unknown (Reg id) -> not (Cfg.Loopinfo.contains t.li lid (def_block t id))
  | Expr.Add ts | Expr.Mul ts -> List.for_all (fun x -> is_computable_in t x ~lid) ts
  | Expr.Add_rec { start; step; loop = header } ->
      let same_loop =
        match Cfg.Loopinfo.loop_of_header t.li header with
        | Some l -> l = lid
        | None -> false
      in
      (same_loop || not (Cfg.Loopinfo.contains t.li lid header))
      && is_computable_in t start ~lid
      && is_computable_in t step ~lid

let rec scev_of_value t (v : value) : Expr.t =
  match v with
  | Const (Cint i) -> Expr.Const i
  | Const (Cbool b) -> Expr.Const (if b then 1L else 0L)
  | Const (Cfloat _) -> Expr.Unknown v
  | Param _ | Global _ -> Expr.Unknown v
  | Reg id -> scev_of_reg t id

and scev_of_reg t id =
  match Hashtbl.find_opt t.memo id with
  | Some e -> e
  | None ->
      let i = Ir.Func.instr t.fn id in
      let e =
        match i.Ir.Instr.kind with
        | Ir.Instr.Ibinop (op, a, b) -> scev_of_binop t id op a b
        | Ir.Instr.Phi _ -> scev_of_phi t id
        | Ir.Instr.Fbinop _ | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ | Ir.Instr.Select _
        | Ir.Instr.Si_to_fp _ | Ir.Instr.Fp_to_si _ | Ir.Instr.Load _
        | Ir.Instr.Alloc _ | Ir.Instr.Call _ ->
            Expr.Unknown (Reg id)
        | Ir.Instr.Store _ | Ir.Instr.Br _ | Ir.Instr.Cond_br _ | Ir.Instr.Ret _
        | Ir.Instr.Unreachable ->
            Expr.Cannot
      in
      (* A phi solving in progress stores Self; don't overwrite that here. *)
      if Hashtbl.find_opt t.memo id = None then Hashtbl.replace t.memo id e;
      Hashtbl.find t.memo id

and scev_of_binop t id op a b =
  let sa () = scev_of_value t a and sb () = scev_of_value t b in
  match op with
  | Ir.Instr.Add -> Expr.add (sa ()) (sb ())
  | Ir.Instr.Sub -> Expr.sub (sa ()) (sb ())
  | Ir.Instr.Mul -> Expr.mul (sa ()) (sb ())
  | Ir.Instr.Shl -> (
      match b with
      | Const (Cint c) when c >= 0L && c < 62L ->
          Expr.mul (sa ()) (Expr.Const (Int64.shift_left 1L (Int64.to_int c)))
      | _ -> Expr.Unknown (Reg id))
  | Ir.Instr.Sdiv | Ir.Instr.Srem | Ir.Instr.And | Ir.Instr.Or | Ir.Instr.Xor
  | Ir.Instr.Ashr | Ir.Instr.Lshr ->
      Expr.Unknown (Reg id)

(* Solve a loop-header phi as a recurrence: bind the phi to Self, take the
   SCEV of its latch-incoming value, and match x_{next} = x + step. *)
and scev_of_phi t id =
  let i = Ir.Func.instr t.fn id in
  let header = i.Ir.Instr.block in
  match Cfg.Loopinfo.loop_of_header t.li header with
  | None -> Expr.Unknown (Reg id)
  | Some lid -> (
      let l = Cfg.Loopinfo.loop t.li lid in
      match i.Ir.Instr.kind with
      | Ir.Instr.Phi incoming when Array.length incoming = 2 ->
          let in_loop b = Cfg.Loopinfo.contains t.li lid b in
          let entry_edge =
            Array.to_list incoming |> List.find_opt (fun (p, _) -> not (in_loop p))
          and latch_edge =
            Array.to_list incoming |> List.find_opt (fun (p, _) -> in_loop p)
          in
          (match (entry_edge, latch_edge) with
          | Some (_, init), Some (_, next) ->
              Hashtbl.replace t.memo id (Expr.Self id);
              let next_scev = Expr.simplify (scev_of_value t next) in
              Hashtbl.remove t.memo id;
              let start = scev_of_value t init in
              let solved =
                match next_scev with
                | Expr.Self s when s = id ->
                    (* x_{k+1} = x_k: loop-invariant phi *)
                    Some start
                | Expr.Add terms ->
                    let selfs, rest =
                      List.partition (fun e -> Expr.equal e (Expr.Self id)) terms
                    in
                    if
                      List.length selfs = 1
                      && not (List.exists Expr.contains_self rest)
                    then
                      let step = Expr.simplify (Expr.Add rest) in
                      if is_computable_in t step ~lid && not (Expr.contains_cannot step)
                      then Some (Expr.Add_rec { start; step; loop = l.Cfg.Loopinfo.header })
                      else None
                    else None
                | _ -> None
              in
              (match solved with
              | Some e when not (Expr.contains_cannot e) -> Expr.simplify e
              | _ -> Expr.Unknown (Reg id))
          | _ -> Expr.Unknown (Reg id))
      | _ -> Expr.Unknown (Reg id))

(* Classification of a loop-header phi for the limit study. *)
type phi_class =
  | Computable of Expr.t (* full add-recurrence (IV / MIV / polynomial) *)
  | Computable_shifted of Expr.t
    (* x_{k+1} = f(k) with f self-free and computable: reproducible from the
       iteration index after the first iteration *)
  | Non_computable

let classify_header_phi t id : phi_class =
  let i = Ir.Func.instr t.fn id in
  let header = i.Ir.Instr.block in
  match (Cfg.Loopinfo.loop_of_header t.li header, i.Ir.Instr.kind) with
  | Some lid, Ir.Instr.Phi incoming when Array.length incoming = 2 -> (
      match Expr.simplify (scev_of_reg t id) with
      | Expr.Add_rec _ as e when is_computable_in t e ~lid -> Computable e
      | Expr.Const _ as e -> Computable e
      | e when is_invariant t e ~lid && not (Expr.contains_cannot e) -> Computable e
      | _ -> (
          (* Second chance: latch value may be a self-free function of the
             iteration (a "shifted" computable sequence). *)
          let in_loop b = Cfg.Loopinfo.contains t.li lid b in
          let latch_edge =
            Array.to_list incoming |> List.find_opt (fun (p, _) -> in_loop p)
          in
          match latch_edge with
          | Some (_, next) ->
              Hashtbl.replace t.memo id (Expr.Self id);
              let next_scev = Expr.simplify (scev_of_value t next) in
              Hashtbl.remove t.memo id;
              if
                (not (Expr.contains_self next_scev))
                && (not (Expr.contains_cannot next_scev))
                && is_computable_in t next_scev ~lid
              then Computable_shifted next_scev
              else Non_computable
          | None -> Non_computable))
  | _ -> Non_computable
