(** Scalar-evolution expressions. [Add_rec {start; step; loop}] denotes the
    sequence x_0 = start, x_(k+1) = x_k + step(k) over iterations of the loop
    with header block id [loop] — affine when [step] is invariant, polynomial
    when [step] is itself an add-recurrence of the same loop (mutual
    induction). [Self] is a transient marker used while solving a phi's own
    recurrence and never escapes {!Analysis}. *)

type t =
  | Const of int64
  | Unknown of Ir.Types.value  (** opaque leaf; invariance judged by def site *)
  | Self of int
  | Add of t list
  | Mul of t list
  | Add_rec of { start : t; step : t; loop : int }
  | Cannot

val equal : t -> t -> bool

val contains_self : t -> bool

val contains_cannot : t -> bool

val compare_expr : t -> t -> int

(** Normalization: flattening, constant folding, pointwise merging of
    same-loop add-recurrences, linear distribution of constants. Sound
    without invariance knowledge; preserves {!eval} (property-tested). *)
val simplify : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t

val neg : t -> t

(** Ground-truth evaluation: [iters] maps loop headers to iteration indices;
    [env] resolves unknowns. Add-recurrences are evaluated by literally
    running the recurrence.
    @raise Invalid_argument on [Self] or [Cannot] *)
val eval : env:(Ir.Types.value -> int64) -> iters:(int * int) list -> t -> int64

val pp : Format.formatter -> t -> unit

val to_string : t -> string
