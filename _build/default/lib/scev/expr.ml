(* Scalar-evolution expressions. An [Add_rec] {start; step; loop} denotes the
   sequence x_0 = start, x_{k+1} = x_k + step(k) over iterations of [loop]
   (identified by its header block id) — affine when [step] is invariant,
   polynomial when [step] is itself an add-recurrence of the same loop
   (mutual induction variables). [Self] is a transient marker used while
   solving a header phi's own recurrence and never escapes the analysis. *)

type t =
  | Const of int64
  | Unknown of Ir.Types.value (* opaque leaf; invariance judged by def site *)
  | Self of int (* instruction id of the phi being solved *)
  | Add of t list
  | Mul of t list
  | Add_rec of { start : t; step : t; loop : int }
  | Cannot

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Int64.equal x y
  | Unknown x, Unknown y -> Ir.Types.equal_value x y
  | Self x, Self y -> x = y
  | Add xs, Add ys | Mul xs, Mul ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Add_rec x, Add_rec y -> equal x.start y.start && equal x.step y.step && x.loop = y.loop
  | Cannot, Cannot -> true
  | (Const _ | Unknown _ | Self _ | Add _ | Mul _ | Add_rec _ | Cannot), _ -> false

let rec contains_self e =
  match e with
  | Self _ -> true
  | Const _ | Unknown _ | Cannot -> false
  | Add ts | Mul ts -> List.exists contains_self ts
  | Add_rec { start; step; _ } -> contains_self start || contains_self step

let rec contains_cannot e =
  match e with
  | Cannot -> true
  | Const _ | Unknown _ | Self _ -> false
  | Add ts | Mul ts -> List.exists contains_cannot ts
  | Add_rec { start; step; _ } -> contains_cannot start || contains_cannot step

(* Total order used to canonicalize term lists so that structurally equal
   expressions compare equal after simplification. *)
let rec compare_expr a b =
  let rank = function
    | Const _ -> 0
    | Unknown _ -> 1
    | Self _ -> 2
    | Add _ -> 3
    | Mul _ -> 4
    | Add_rec _ -> 5
    | Cannot -> 6
  in
  match (a, b) with
  | Const x, Const y -> Int64.compare x y
  | Unknown x, Unknown y -> Stdlib.compare x y
  | Self x, Self y -> Int.compare x y
  | Add xs, Add ys | Mul xs, Mul ys -> List.compare compare_expr xs ys
  | Add_rec x, Add_rec y ->
      let c = Int.compare x.loop y.loop in
      if c <> 0 then c
      else
        let c = compare_expr x.start y.start in
        if c <> 0 then c else compare_expr x.step y.step
  | Cannot, Cannot -> 0
  | _ -> Int.compare (rank a) (rank b)

(* Normalization. Kept conservative: only rewrites that are sound without
   knowing loop-invariance of unknowns (constants are invariant everywhere;
   add-recurrences of the same loop combine pointwise). *)
let rec simplify e =
  match e with
  | Const _ | Unknown _ | Self _ | Cannot -> e
  | Add ts -> simplify_add (List.map simplify ts)
  | Mul ts -> simplify_mul (List.map simplify ts)
  | Add_rec { start; step; loop } -> (
      let start = simplify start and step = simplify step in
      (* a zero-step recurrence is just its start value — but only when the
         start does not itself vary with this loop (it always is invariant in
         exprs produced by the analysis; arbitrary exprs need the check) *)
      match step with
      | Const 0L when not (mentions_loop loop start) -> start
      | _ -> Add_rec { start; step; loop })

and mentions_loop loop e =
  match e with
  | Const _ | Unknown _ | Cannot -> false
  | Self _ -> true
  | Add ts | Mul ts -> List.exists (mentions_loop loop) ts
  | Add_rec { start; step; loop = l } ->
      l = loop || mentions_loop loop start || mentions_loop loop step

and simplify_add ts =
  let flat =
    List.concat_map (fun t -> match t with Add ts' -> ts' | t -> [ t ]) ts
  in
  if List.exists (fun t -> t = Cannot) flat then Cannot
  else begin
    let consts, rest = List.partition (function Const _ -> true | _ -> false) flat in
    let csum =
      List.fold_left (fun acc t -> match t with Const c -> Int64.add acc c | _ -> acc) 0L consts
    in
    (* Group add-recurrences by loop and merge them pointwise. *)
    let recs, others =
      List.partition (function Add_rec _ -> true | _ -> false) rest
    in
    let merged =
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun t ->
          match t with
          | Add_rec { start; step; loop } ->
              let s0, t0 =
                Option.value ~default:(Const 0L, Const 0L) (Hashtbl.find_opt tbl loop)
              in
              Hashtbl.replace tbl loop (simplify_add [ s0; start ], simplify_add [ t0; step ])
          | _ -> ())
        recs;
      Hashtbl.fold
        (fun loop (start, step) acc -> Add_rec { start; step; loop } :: acc)
        tbl []
      |> List.sort compare_expr
    in
    (* Fold the constant part into the first add-rec's start when possible
       (a constant is invariant in every loop). *)
    let merged, csum =
      match merged with
      | Add_rec { start; step; loop } :: rest when csum <> 0L ->
          (Add_rec { start = simplify_add [ start; Const csum ]; step; loop } :: rest, 0L)
      | _ -> (merged, csum)
    in
    let terms =
      (if csum = 0L then [] else [ Const csum ]) @ List.sort compare_expr others @ merged
    in
    match terms with [] -> Const 0L | [ t ] -> t | ts -> Add ts
  end

and simplify_mul ts =
  let flat =
    List.concat_map (fun t -> match t with Mul ts' -> ts' | t -> [ t ]) ts
  in
  if List.exists (fun t -> t = Cannot) flat then Cannot
  else begin
    let consts, rest = List.partition (function Const _ -> true | _ -> false) flat in
    let cprod =
      List.fold_left (fun acc t -> match t with Const c -> Int64.mul acc c | _ -> acc) 1L consts
    in
    if cprod = 0L then Const 0L
    else
      match (rest, cprod) with
      | [], c -> Const c
      | [ t ], 1L -> t
      (* Distribute a constant over a sum or an add-rec (linearity). *)
      | [ Add ts' ], c -> simplify_add (List.map (fun t -> simplify_mul [ Const c; t ]) ts')
      | [ Add_rec { start; step; loop } ], c ->
          Add_rec
            {
              start = simplify_mul [ Const c; start ];
              step = simplify_mul [ Const c; step ];
              loop;
            }
      | ts', 1L -> Mul (List.sort compare_expr ts')
      | ts', c -> Mul (Const c :: List.sort compare_expr ts')
  end

let add a b = simplify (Add [ a; b ])
let sub a b = simplify (Add [ a; Mul [ Const (-1L); b ] ])
let mul a b = simplify (Mul [ a; b ])
let neg a = simplify (Mul [ Const (-1L); a ])

(* Evaluation for testing: [iters] maps a loop header to the iteration index
   at which to evaluate; [env] resolves opaque unknowns. Add-recurrences are
   evaluated by literally running the recurrence, which is the semantic
   ground truth the simplifier must preserve. *)
let rec eval ~env ~iters e =
  match e with
  | Const c -> c
  | Unknown v -> env v
  | Self id -> invalid_arg (Printf.sprintf "Expr.eval: unresolved Self %%%d" id)
  | Cannot -> invalid_arg "Expr.eval: Cannot"
  | Add ts -> List.fold_left (fun acc t -> Int64.add acc (eval ~env ~iters t)) 0L ts
  | Mul ts -> List.fold_left (fun acc t -> Int64.mul acc (eval ~env ~iters t)) 1L ts
  | Add_rec { start; step; loop } ->
      let k = Option.value ~default:0 (List.assoc_opt loop iters) in
      let set_iter j = (loop, j) :: List.remove_assoc loop iters in
      let acc = ref (eval ~env ~iters:(set_iter 0) start) in
      for j = 0 to k - 1 do
        acc := Int64.add !acc (eval ~env ~iters:(set_iter j) step)
      done;
      !acc

let rec pp ppf e =
  match e with
  | Const c -> Format.fprintf ppf "%Ld" c
  | Unknown v -> Format.fprintf ppf "%s" (Ir.Pp.value_to_string v)
  | Self id -> Format.fprintf ppf "self(%%%d)" id
  | Cannot -> Format.pp_print_string ppf "<cannot>"
  | Add ts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ") pp)
        ts
  | Mul ts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " * ") pp)
        ts
  | Add_rec { start; step; loop } ->
      Format.fprintf ppf "{%a,+,%a}<bb%d>" pp start pp step loop

let to_string e = Format.asprintf "%a" pp e
