(* Reduction recurrence descriptors, mirroring LLVM's RecurrenceDescriptor:
   detect loop-header phis whose only in-loop role is an accumulation
   (sum/product/bitwise/min/max) so the limit study can treat them as
   decoupled from the loop's critical path under -reduc1 (paper §II-A). *)

open Ir.Types

type kind =
  | Sum (* integer add / sub-accumulate *)
  | Prod
  | Band
  | Bor
  | Bxor
  | Fsum
  | Fprod
  | Min
  | Max
  | Fmin
  | Fmax

let kind_name = function
  | Sum -> "sum"
  | Prod -> "prod"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Fsum -> "fsum"
  | Fprod -> "fprod"
  | Min -> "min"
  | Max -> "max"
  | Fmin -> "fmin"
  | Fmax -> "fmax"

type descriptor = { phi : int; kind : kind; chain : int list (* instr ids *) }

(* Does value [v] transitively reach instruction [phi_id] through in-loop
   defs? Used to reject accumulators whose "independent" operand actually
   feeds back into the accumulator. *)
let reaches fn li lid ~phi_id v =
  let seen = Hashtbl.create 16 in
  let rec go v =
    match v with
    | Reg id when id = phi_id -> true
    | Reg id when not (Hashtbl.mem seen id) ->
        Hashtbl.replace seen id ();
        let i = Ir.Func.instr fn id in
        Cfg.Loopinfo.contains li lid i.Ir.Instr.block
        && List.exists go (Ir.Instr.operands i.Ir.Instr.kind)
    | _ -> false
  in
  go v

(* Uses of register [r] across the function: (user instr id, in-loop?). *)
let uses_of fn li lid r =
  Ir.Func.fold_instrs
    (fun acc i ->
      let used =
        List.exists
          (fun v -> match v with Reg x -> x = r | _ -> false)
          (Ir.Instr.operands i.Ir.Instr.kind)
      in
      if used then
        (i.Ir.Instr.id, Cfg.Loopinfo.contains li lid i.Ir.Instr.block) :: acc
      else acc)
    [] fn

let binop_kind = function
  | Ir.Instr.Add -> Some Sum
  | Ir.Instr.Sub -> Some Sum (* acc = acc - v accumulates a negated sum *)
  | Ir.Instr.Mul -> Some Prod
  | Ir.Instr.And -> Some Band
  | Ir.Instr.Or -> Some Bor
  | Ir.Instr.Xor -> Some Bxor
  | Ir.Instr.Sdiv | Ir.Instr.Srem | Ir.Instr.Shl | Ir.Instr.Ashr | Ir.Instr.Lshr ->
      None

let fbinop_kind = function
  | Ir.Instr.Fadd -> Some Fsum
  | Ir.Instr.Fsub -> Some Fsum
  | Ir.Instr.Fmul -> Some Fprod
  | Ir.Instr.Fdiv -> None

(* Min/max idiom: select(cmp(a, b), x, y) where {a,b} = {x,y}. Returns the
   reduction kind and the cmp instruction id. *)
let minmax_of fn id =
  match Ir.Func.kind fn id with
  | Ir.Instr.Select (Reg cid, x, y) -> (
      match Ir.Func.kind fn cid with
      | Ir.Instr.Icmp (op, a, b)
        when (equal_value a x && equal_value b y) || (equal_value a y && equal_value b x)
        -> (
          let flipped = equal_value a y in
          match (op, flipped) with
          | (Ir.Instr.Islt | Ir.Instr.Isle), false | (Ir.Instr.Isgt | Ir.Instr.Isge), true ->
              Some (Min, cid, x, y)
          | (Ir.Instr.Isgt | Ir.Instr.Isge), false | (Ir.Instr.Islt | Ir.Instr.Isle), true ->
              Some (Max, cid, x, y)
          | (Ir.Instr.Ieq | Ir.Instr.Ine), _ -> None)
      | Ir.Instr.Fcmp (op, a, b)
        when (equal_value a x && equal_value b y) || (equal_value a y && equal_value b x)
        -> (
          let flipped = equal_value a y in
          match (op, flipped) with
          | (Ir.Instr.Flt | Ir.Instr.Fle), false | (Ir.Instr.Fgt | Ir.Instr.Fge), true ->
              Some (Fmin, cid, x, y)
          | (Ir.Instr.Fgt | Ir.Instr.Fge), false | (Ir.Instr.Flt | Ir.Instr.Fle), true ->
              Some (Fmax, cid, x, y)
          | (Ir.Instr.Feq | Ir.Instr.Fne), _ -> None)
      | _ -> None)
  | _ -> None

(* Try to see instruction [id] (the latch-incoming def of the phi) as the tip
   of an accumulation chain over [phi_id]. Returns the chain (instr ids,
   including cmp instructions of min/max links) if the shape holds. *)
let collect_chain fn li lid ~phi_id ~tip =
  let exception Not_reduction in
  let chain = ref [] in
  let kind_seen = ref None in
  let note_kind k =
    match !kind_seen with
    | None -> kind_seen := Some k
    | Some k0 ->
        (* Sub links report Sum, so mixing add/sub is fine; anything else
           must be homogeneous. *)
        if k0 <> k then raise Not_reduction
  in
  let rec walk id =
    if List.mem id !chain then ()
    else begin
      chain := id :: !chain;
      let arm v =
        (* Each operand is either the phi itself, an inner chain link, or an
           independent value that must not reach back to the phi. *)
        match v with
        | Reg r when r = phi_id -> ()
        | Reg r
          when Cfg.Loopinfo.contains li lid (Ir.Func.instr fn r).Ir.Instr.block
               && reaches fn li lid ~phi_id (Reg r) ->
            walk r
        | v -> if reaches fn li lid ~phi_id v then raise Not_reduction
      in
      (* A merge arm must carry the running value (be the phi or a chain
         link); an arm independent of the accumulator would *reset* it, which
         no decoupled reduction tree can reproduce. *)
      let carrying_arm v =
        match v with
        | Reg r when r = phi_id -> ()
        | Reg r
          when Cfg.Loopinfo.contains li lid (Ir.Func.instr fn r).Ir.Instr.block
               && reaches fn li lid ~phi_id (Reg r) ->
            walk r
        | _ -> raise Not_reduction
      in
      match minmax_of fn id with
      | Some (k, cid, x, y) ->
          note_kind k;
          chain := cid :: !chain;
          arm x;
          arm y
      | None -> (
          match Ir.Func.kind fn id with
          | Ir.Instr.Ibinop (op, a, b) -> (
              match binop_kind op with
              | Some k ->
                  note_kind k;
                  (* acc - v accumulates only on the left arm *)
                  if op = Ir.Instr.Sub && reaches fn li lid ~phi_id b then
                    raise Not_reduction;
                  arm a;
                  arm b
              | None -> raise Not_reduction)
          | Ir.Instr.Fbinop (op, a, b) -> (
              match fbinop_kind op with
              | Some k ->
                  note_kind k;
                  if op = Ir.Instr.Fsub && reaches fn li lid ~phi_id b then
                    raise Not_reduction;
                  arm a;
                  arm b
              | None -> raise Not_reduction)
          | Ir.Instr.Phi incoming ->
              (* Conditional accumulation (if-merge) or accumulation carried
                 through an inner loop's header phi: every incoming edge must
                 carry the running value. Contributes no operation kind. *)
              Array.iter (fun (_, v) -> carrying_arm v) incoming
          | Ir.Instr.Select (c, a, b) ->
              (* x = cond ? x <op> v : x — conditional accumulation as a
                 select; the condition must not involve the accumulator. *)
              if reaches fn li lid ~phi_id c then raise Not_reduction;
              carrying_arm a;
              carrying_arm b
          | _ -> raise Not_reduction)
    end
  in
  try
    walk tip;
    match !kind_seen with Some k -> Some (k, !chain) | None -> None
  with Not_reduction -> None

(* Detect whether header phi [phi_id] is a reduction accumulator. *)
let detect fn li phi_id : descriptor option =
  let i = Ir.Func.instr fn phi_id in
  let header = i.Ir.Instr.block in
  match (Cfg.Loopinfo.loop_of_header li header, i.Ir.Instr.kind) with
  | Some lid, Ir.Instr.Phi incoming when Array.length incoming = 2 -> (
      let in_loop b = Cfg.Loopinfo.contains li lid b in
      let latch_edge =
        Array.to_list incoming |> List.find_opt (fun (p, _) -> in_loop p)
      in
      match latch_edge with
      | Some (_, Reg tip) when in_loop (Ir.Func.instr fn tip).Ir.Instr.block -> (
          match collect_chain fn li lid ~phi_id ~tip with
          | Some (kind, chain) ->
              (* Every in-loop use of the phi and of intermediate chain values
                 must stay inside the chain, or the running value escapes and
                 the reduction cannot be decoupled. *)
              let escape r =
                List.exists
                  (fun (user, user_in_loop) ->
                    user_in_loop && (not (List.mem user chain)) && user <> phi_id)
                  (uses_of fn li lid r)
              in
              if escape phi_id || List.exists escape chain then None
              else Some { phi = phi_id; kind; chain }
          | None -> None)
      | _ -> None)
  | _ -> None
