(* Campaign-runner tests: the error taxonomy end to end via fault injection,
   checkpoint write / resume, retry-at-reduced-fuel, and the acceptance
   invariant that a fuel-truncated run yields a profile Evaluate scores
   without raising and Crosscheck still validates. *)

open Campaign

(* a small well-behaved program with a loop worth profiling *)
let good_src =
  {|
fn main() -> int {
  var a: int[] = new int[64];
  for (var i: int = 0; i < 64; i = i + 1) { a[i] = i * 3; }
  var s: int = 0;
  for (var i: int = 0; i < 64; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return 0;
}
|}

(* unbounded loop: only a budget can stop it *)
let endless_src =
  "fn main() -> int { var x: int = 0; while (true) { x = x + 1; } return x; }"

let quiet _ = ()

let budgets ?(fuel = 1_000_000) ?(retries = 1) () =
  { Runner.default_budgets with Runner.fuel; retries }

let run_one ?budgets:(b = Runner.default_budgets) ?faults_of name src =
  let s = Runner.run ~budgets:b ?faults_of ~log:quiet [ (name, src) ] in
  match s.Runner.results with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)

(* ---- error taxonomy ---- *)

let test_completed () =
  let r = run_one ~budgets:(budgets ()) "good" good_src in
  match r.Runner.status with
  | Runner.Completed scores ->
      Alcotest.(check bool) "has scores" true (scores <> []);
      Alcotest.(check bool) "ran instructions" true (r.Runner.clock > 0);
      List.iter
        (fun (s : Runner.score) ->
          Alcotest.(check bool) "speedup >= 1" true (s.Runner.speedup >= 1.0 -. 1e-9))
        scores
  | st -> Alcotest.failf "expected completed, got %s" (Runner.status_to_string st)

let test_compile_error () =
  let r = run_one "broken" "} fn main(" in
  match r.Runner.status with
  | Runner.Errored (Runner.Compile_error _) -> ()
  | st -> Alcotest.failf "expected compile error, got %s" (Runner.status_to_string st)

let test_trap_class () =
  let faults_of _ = [ (50, Interp.Machine.Inject_div_by_zero) ] in
  let r = run_one ~budgets:(budgets ()) ~faults_of "trapped" good_src in
  match r.Runner.status with
  | Runner.Errored (Runner.Trap (Interp.Rvalue.Div_by_zero, _)) -> ()
  | st -> Alcotest.failf "expected div0 trap, got %s" (Runner.status_to_string st)

let test_oob_trap_class () =
  let faults_of _ = [ (50, Interp.Machine.Inject_oob) ] in
  let r = run_one ~budgets:(budgets ()) ~faults_of "oob" good_src in
  match r.Runner.status with
  | Runner.Errored (Runner.Trap (Interp.Rvalue.Out_of_bounds, _)) -> ()
  | st -> Alcotest.failf "expected oob trap, got %s" (Runner.status_to_string st)

let test_budget_truncation_and_retry () =
  (* endless loop under a small fuel budget: first attempt truncates, the
     retry at fuel/4 truncates too; the longer prefix is kept *)
  let r = run_one ~budgets:(budgets ~fuel:10_000 ()) "endless" endless_src in
  (match r.Runner.status with
  | Runner.Truncated (Interp.Rvalue.Fuel, _) -> ()
  | st -> Alcotest.failf "expected fuel truncation, got %s" (Runner.status_to_string st));
  Alcotest.(check int) "retried once" 2 r.Runner.attempts;
  Alcotest.(check bool) "kept the longer prefix" true (r.Runner.clock >= 10_000)

let test_no_retry_when_disabled () =
  let r = run_one ~budgets:(budgets ~fuel:10_000 ~retries:0 ()) "endless" endless_src in
  Alcotest.(check int) "single attempt" 1 r.Runner.attempts

let test_budget_exhausted_degenerate () =
  (* fuel-out injected at clock 0: no prefix at all -> the degenerate
     Budget_exhausted error, not a truncated result *)
  let faults_of _ = [ (0, Interp.Machine.Inject_fuel_out) ] in
  let r = run_one ~budgets:(budgets ~retries:0 ()) ~faults_of "empty" good_src in
  match r.Runner.status with
  | Runner.Errored (Runner.Budget_exhausted Interp.Rvalue.Fuel) -> ()
  | st -> Alcotest.failf "expected budget-exhausted, got %s" (Runner.status_to_string st)

let test_campaign_isolates_failures () =
  (* one task of every class in a single campaign; later tasks still run *)
  let faults_of = function
    | "trapped" -> [ (50, Interp.Machine.Inject_div_by_zero) ]
    | _ -> []
  in
  let s =
    Runner.run ~budgets:(budgets ~fuel:10_000 ()) ~faults_of ~log:quiet
      [
        ("broken", "} fn main(");
        ("trapped", good_src);
        ("endless", endless_src);
        ("good", good_src);
      ]
  in
  Alcotest.(check int) "all results present" 4 (List.length s.Runner.results);
  Alcotest.(check int) "completed" 1 s.Runner.n_completed;
  Alcotest.(check int) "truncated" 1 s.Runner.n_truncated;
  Alcotest.(check int) "errored" 2 s.Runner.n_errored;
  Alcotest.(check bool) "failure breakdown has compile-error" true
    (List.mem_assoc "compile-error" s.Runner.failures);
  Alcotest.(check bool) "failure breakdown has div0" true
    (List.mem_assoc "trap:div-by-zero" s.Runner.failures);
  Alcotest.(check bool) "geomeans over scored tasks" true (s.Runner.geomeans <> [])

(* ---- checkpoint / resume ---- *)

let with_tmp f =
  let path = Filename.temp_file "campaign" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_checkpoint_roundtrip () =
  List.iter
    (fun r ->
      match Runner.result_of_json (Runner.result_to_json r) with
      | Ok r' ->
          Alcotest.(check string) "target" r.Runner.target r'.Runner.target;
          Alcotest.(check string) "status"
            (Runner.status_to_string r.Runner.status)
            (Runner.status_to_string r'.Runner.status);
          Alcotest.(check int) "attempts" r.Runner.attempts r'.Runner.attempts;
          Alcotest.(check int) "clock" r.Runner.clock r'.Runner.clock
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [
      {
        Runner.target = "a";
        status =
          Runner.Completed
            [
              {
                Runner.config = Loopa.Config.best_helix;
                speedup = 2.5;
                coverage_pct = 80.0;
              };
            ];
        attempts = 1;
        clock = 123;
        wall_s = 0.5;
      };
      {
        Runner.target = "b";
        status = Runner.Truncated (Interp.Rvalue.Fuel, []);
        attempts = 2;
        clock = 10_000;
        wall_s = 1.0;
      };
      {
        Runner.target = "c";
        status = Runner.Errored (Runner.Trap (Interp.Rvalue.Out_of_bounds, "boom"));
        attempts = 1;
        clock = 0;
        wall_s = 0.0;
      };
      {
        Runner.target = "d";
        status = Runner.Errored (Runner.Budget_exhausted Interp.Rvalue.Wall);
        attempts = 1;
        clock = 0;
        wall_s = 2.0;
      };
    ]

let test_resume_skips_checkpointed () =
  with_tmp (fun ck ->
      let s1 =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ck ~log:quiet
          [ ("good", good_src); ("broken", "} fn main(") ]
      in
      Alcotest.(check int) "first pass runs both" 0 s1.Runner.n_resumed;
      (* resumed pass: both restored, plus one genuinely new task. If the
         runner re-ran "broken", the count below would shift. *)
      let s2 =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ck ~resume:true ~log:quiet
          [ ("good", good_src); ("broken", "} fn main("); ("endless", endless_src) ]
      in
      Alcotest.(check int) "two resumed" 2 s2.Runner.n_resumed;
      Alcotest.(check int) "all three reported" 3 (List.length s2.Runner.results);
      (* the checkpoint now holds all three: a further resume runs nothing *)
      let s3 =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ck ~resume:true ~log:quiet
          [ ("good", good_src); ("broken", "} fn main("); ("endless", endless_src) ]
      in
      Alcotest.(check int) "all resumed" 3 s3.Runner.n_resumed)

let test_resume_tolerates_garbage () =
  with_tmp (fun ck ->
      let oc = open_out ck in
      output_string oc "not json at all\n{\"target\":\"half\"\n";
      close_out oc;
      let s =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ck ~resume:true ~log:quiet
          [ ("good", good_src) ]
      in
      Alcotest.(check int) "garbage ignored, task ran" 0 s.Runner.n_resumed;
      Alcotest.(check int) "completed" 1 s.Runner.n_completed)

(* ---- parallel executor ---- *)

(* A checkpoint file as comparable lines, with the per-process timing
   fields dropped: wall_s is measured in whichever process ran the task
   and telemetry carries clock readings — everything else must be
   byte-identical between serial and forked runs. *)
let normalized_lines path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Util.Json.of_string l with
         | Ok (Util.Json.Obj fields) ->
             Util.Json.to_string
               (Util.Json.Obj
                  (List.filter
                     (fun (k, _) -> k <> "wall_s" && k <> "telemetry")
                     fields))
         | Ok j -> Util.Json.to_string j
         | Error e -> Alcotest.failf "unparseable checkpoint line %S: %s" l e)

let mixed_targets =
  [
    ("good", good_src);
    ("broken", "} fn main(");
    ("endless", endless_src);
    ("good2", good_src);
    ("trapped", good_src);
  ]

let mixed_faults = function
  | "trapped" -> [ (50, Interp.Machine.Inject_div_by_zero) ]
  | _ -> []

let test_forked_checkpoint_matches_serial () =
  with_tmp (fun ck_serial ->
      with_tmp (fun ck_forked ->
          let b = budgets ~fuel:10_000 () in
          let s1 =
            Runner.run ~budgets:b ~faults_of:mixed_faults ~checkpoint:ck_serial
              ~log:quiet mixed_targets
          in
          let s4 =
            Runner.run ~budgets:b ~faults_of:mixed_faults ~checkpoint:ck_forked
              ~log:quiet ~executor:(Runner.Forked 4) mixed_targets
          in
          Alcotest.(check (list string))
            "checkpoints identical modulo timing"
            (normalized_lines ck_serial) (normalized_lines ck_forked);
          Alcotest.(check int) "completed" s1.Runner.n_completed s4.Runner.n_completed;
          Alcotest.(check int) "truncated" s1.Runner.n_truncated s4.Runner.n_truncated;
          Alcotest.(check int) "errored" s1.Runner.n_errored s4.Runner.n_errored;
          List.iter2
            (fun (a : Runner.result) (b : Runner.result) ->
              Alcotest.(check string) "target order" a.Runner.target b.Runner.target;
              Alcotest.(check string) "status"
                (Runner.status_to_string a.Runner.status)
                (Runner.status_to_string b.Runner.status))
            s1.Runner.results s4.Runner.results))

let test_worker_lost_then_resume () =
  (* the hook runs in the worker process: killing there must cost exactly
     that task, be recorded as Worker_lost, and leave a checkpoint a later
     serial --resume completes without re-running the poison task *)
  let kill_target target =
    if target = "kill" then Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  let targets =
    [ ("a", good_src); ("kill", good_src); ("b", good_src); ("c", good_src) ]
  in
  with_tmp (fun ck ->
      let s =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ck ~log:quiet
          ~executor:(Runner.Forked 2) ~on_task_start:kill_target targets
      in
      Alcotest.(check int) "three completed" 3 s.Runner.n_completed;
      Alcotest.(check int) "one errored" 1 s.Runner.n_errored;
      (match
         List.find (fun r -> r.Runner.target = "kill") s.Runner.results
       with
      | { Runner.status = Runner.Errored (Runner.Worker_lost cause); _ } ->
          Alcotest.(check bool) "cause names the signal" true
            (Astring_contains.contains cause "SIGKILL")
      | r ->
          Alcotest.failf "expected worker-lost, got %s"
            (Runner.status_to_string r.Runner.status));
      Alcotest.(check bool) "breakdown has worker-lost" true
        (List.mem_assoc "worker-lost" s.Runner.failures);
      (* serial resume with the same murderous hook: every target including
         the poison one is restored, so the hook never fires again *)
      let s2 =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ck ~resume:true
          ~log:quiet ~on_task_start:kill_target targets
      in
      Alcotest.(check int) "all resumed" 4 s2.Runner.n_resumed)

let test_worker_lost_codec () =
  let r =
    {
      Runner.target = "x";
      status = Runner.Errored (Runner.Worker_lost "worker killed by SIGKILL");
      attempts = 1;
      clock = 0;
      wall_s = 0.0;
    }
  in
  match Runner.result_of_json (Runner.result_to_json r) with
  | Ok { Runner.status = Runner.Errored (Runner.Worker_lost m); _ } ->
      Alcotest.(check string) "message survives" "worker killed by SIGKILL" m
  | Ok r' ->
      Alcotest.failf "wrong status: %s" (Runner.status_to_string r'.Runner.status)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_interrupt_flushes_and_resumes () =
  (* a SIGINT mid-campaign: the runner finishes nothing new, flushes the
     decided prefix as whole JSONL lines and raises Interrupted; a resumed
     run completes the remainder *)
  let signal_at target =
    if target = "second" then Unix.kill (Unix.getpid ()) Sys.sigint
  in
  let targets =
    [ ("first", good_src); ("second", good_src); ("third", good_src) ]
  in
  with_tmp (fun ck ->
      (match
         Runner.run ~budgets:(budgets ()) ~checkpoint:ck ~log:quiet
           ~on_task_start:signal_at targets
       with
      | _ -> Alcotest.fail "expected Interrupted"
      | exception Runner.Interrupted -> ());
      (* every flushed line parses (atomic line writes), and the prefix
         decided before the signal is all there *)
      let lines = normalized_lines ck in
      Alcotest.(check int) "first and second checkpointed" 2 (List.length lines);
      let s =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ck ~resume:true ~log:quiet
          targets
      in
      Alcotest.(check int) "two resumed" 2 s.Runner.n_resumed;
      Alcotest.(check int) "all completed" 3 s.Runner.n_completed)

(* ---- acceptance: truncated profiles stay scorable and sound ---- *)

let test_truncated_profile_scorable () =
  let a =
    Loopa.Driver.analyze_source ~fuel:500 ~static_prune:false good_src
  in
  Alcotest.(check bool) "profile truncated" true
    a.Loopa.Driver.profile.Loopa.Profile.truncated;
  (* Evaluate must not raise on the prefix, and Crosscheck must still pass *)
  List.iter
    (fun cfg ->
      let r = Loopa.Driver.evaluate a cfg in
      Alcotest.(check bool) "flagged" true r.Loopa.Evaluate.truncated;
      Alcotest.(check bool) "speedup sane" true (r.Loopa.Evaluate.speedup >= 1.0 -. 1e-9))
    Loopa.Config.figure_ladder;
  Alcotest.(check bool) "crosscheck passes on prefix" true
    (Loopa.Crosscheck.check a.Loopa.Driver.profile = [])

let () =
  Alcotest.run "campaign"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "completed" `Quick test_completed;
          Alcotest.test_case "compile error" `Quick test_compile_error;
          Alcotest.test_case "div0 trap" `Quick test_trap_class;
          Alcotest.test_case "oob trap" `Quick test_oob_trap_class;
          Alcotest.test_case "budget truncation + retry" `Quick
            test_budget_truncation_and_retry;
          Alcotest.test_case "retries disabled" `Quick test_no_retry_when_disabled;
          Alcotest.test_case "degenerate budget exhaustion" `Quick
            test_budget_exhausted_degenerate;
          Alcotest.test_case "isolation across classes" `Quick
            test_campaign_isolates_failures;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "resume skips" `Quick test_resume_skips_checkpointed;
          Alcotest.test_case "garbage tolerated" `Quick test_resume_tolerates_garbage;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "forked checkpoint matches serial" `Quick
            test_forked_checkpoint_matches_serial;
          Alcotest.test_case "worker lost, respawn, resume" `Quick
            test_worker_lost_then_resume;
          Alcotest.test_case "worker-lost codec" `Quick test_worker_lost_codec;
          Alcotest.test_case "interrupt flushes and resumes" `Quick
            test_interrupt_flushes_and_resumes;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "truncated profile scorable" `Quick
            test_truncated_profile_scorable;
        ] );
    ]
