(* Static memory-dependence analysis: subscript-test math on raw stride
   equations, end-to-end per-loop verdicts on purpose-built programs, the
   suite registry's statically provable loops, and the observability of
   memory-event pruning (Proven_doall loops drop out of the event stream
   without changing any evaluation result). *)

let verdict_str = Deptest.Analysis.verdict_to_string

(* ---- subscript test math ---- *)

let sub ~sw ~sr ~c ~n = (Deptest.Subscript.test ~sw ~sr ~c ~n).Deptest.Subscript.verdict

let indep = Deptest.Subscript.Independent

let dep d = Deptest.Subscript.Dependent (Some d)

let dep_any = Deptest.Subscript.Dependent None

let check_v msg want got =
  Alcotest.(check string) msg
    (Deptest.Subscript.verdict_to_string want)
    (Deptest.Subscript.verdict_to_string got)

let test_ziv () =
  (* both strides zero: same cell iff the constant offsets cancel *)
  check_v "same cell" dep_any (sub ~sw:0L ~sr:0L ~c:0L ~n:(Some 10L));
  check_v "distinct cells" indep (sub ~sw:0L ~sr:0L ~c:4L ~n:(Some 10L));
  check_v "no trip needed" indep (sub ~sw:0L ~sr:0L ~c:4L ~n:None)

let test_strong_siv () =
  (* a[i+d] = .. a[i] ..: distance d, refuted when d falls outside the trip *)
  check_v "distance 1" (dep 1L) (sub ~sw:1L ~sr:1L ~c:(-1L) ~n:(Some 100L));
  check_v "distance 3, stride 2" (dep 3L) (sub ~sw:2L ~sr:2L ~c:(-6L) ~n:(Some 100L));
  check_v "same iteration only" indep (sub ~sw:1L ~sr:1L ~c:0L ~n:(Some 100L));
  check_v "backward (WAR only)" indep (sub ~sw:1L ~sr:1L ~c:8L ~n:(Some 100L));
  check_v "distance exceeds trip" indep (sub ~sw:1L ~sr:1L ~c:(-8L) ~n:(Some 5L));
  check_v "distance within trip" (dep 8L) (sub ~sw:1L ~sr:1L ~c:(-8L) ~n:(Some 9L));
  check_v "unknown trip keeps it" (dep 8L) (sub ~sw:1L ~sr:1L ~c:(-8L) ~n:None);
  check_v "non-integral distance" indep (sub ~sw:2L ~sr:2L ~c:(-3L) ~n:(Some 100L))

let test_gcd () =
  (* a[2i] vs a[2i+1]: evens never meet odds *)
  check_v "parity split" indep (sub ~sw:2L ~sr:2L ~c:1L ~n:(Some 100L));
  check_v "gcd divides" (dep 1L) (sub ~sw:2L ~sr:2L ~c:(-2L) ~n:(Some 100L));
  check_v "mixed strides 4/6, c=3" indep (sub ~sw:4L ~sr:6L ~c:3L ~n:None)

let test_weak_siv () =
  (* weak-zero: one side pinned to a fixed cell *)
  check_v "store a[i], load a[0]" dep_any (sub ~sw:1L ~sr:0L ~c:0L ~n:(Some 10L));
  check_v "store a[0], load a[i]" indep (sub ~sw:0L ~sr:1L ~c:0L ~n:(Some 10L));
  check_v "store a[0], load a[i-5]" dep_any (sub ~sw:0L ~sr:1L ~c:(-5L) ~n:(Some 10L));
  check_v "pinned store past trip" indep (sub ~sw:1L ~sr:0L ~c:12L ~n:(Some 10L));
  (* weak-crossing: a[i] vs a[n-i]-style mirrored accesses *)
  check_v "crossing meets" dep_any (sub ~sw:1L ~sr:(-1L) ~c:4L ~n:(Some 10L));
  check_v "crossing out of range" indep (sub ~sw:1L ~sr:(-1L) ~c:40L ~n:(Some 10L))

let test_trip_bounds () =
  (* a loop body that runs at most once cannot carry anything *)
  check_v "trip 1" indep (sub ~sw:1L ~sr:1L ~c:(-1L) ~n:(Some 1L));
  check_v "trip 0" indep (sub ~sw:1L ~sr:1L ~c:0L ~n:(Some 0L))

let test_banerjee () =
  (* general MIV-style strides: the corner box refutes far-apart regions *)
  check_v "ranges overlap" Deptest.Subscript.Maybe
    (sub ~sw:3L ~sr:5L ~c:1L ~n:(Some 100L));
  check_v "ranges disjoint" indep (sub ~sw:1L ~sr:1L ~c:(-1000L) ~n:(Some 10L));
  check_v "no trip, no box" Deptest.Subscript.Maybe (sub ~sw:3L ~sr:5L ~c:1L ~n:None)

(* ---- end-to-end loop verdicts ---- *)

let loop_summaries src =
  let m = Frontend.compile_exn src in
  let ms = Loopa.Driver.prepare m in
  let fs = Loopa.Classify.func_static ms "main" in
  Array.to_list fs.Loopa.Classify.loops
  |> List.map (fun ls -> ls.Loopa.Classify.dep)

let sole_verdict src =
  match loop_summaries src with
  | [ d ] -> d.Deptest.Analysis.verdict
  | ds -> Alcotest.failf "expected exactly one loop, got %d" (List.length ds)

let check_verdict msg want got = Alcotest.(check string) msg want (verdict_str got)

let wrap body =
  Printf.sprintf
    {|
fn main() -> int {
  var a: int[] = new int[128];
  var b: int[] = new int[128];
  %s
  print_int(a[0] + b[0]);
  return 0;
}
|}
    body

let test_verdict_doall () =
  check_verdict "a[i] = a[i] + 1" "proven-doall"
    (sole_verdict
       (wrap "for (var i: int = 0; i < 100; i = i + 1) { a[i] = a[i] + 1; }"))

let test_verdict_lcd_distance_1 () =
  match
    sole_verdict
      (wrap "for (var i: int = 0; i < 100; i = i + 1) { a[i + 1] = a[i]; }")
  with
  | Deptest.Analysis.Proven_lcd w ->
      Alcotest.(check (option int64)) "distance 1" (Some 1L)
        w.Deptest.Analysis.distance
  | v -> Alcotest.failf "expected proven-lcd, got %s" (verdict_str v)

let test_verdict_gcd () =
  check_verdict "a[2i] = a[2i+1]" "proven-doall"
    (sole_verdict
       (wrap
          "for (var i: int = 0; i < 60; i = i + 1) { a[2 * i] = a[2 * i + 1]; }"))

let test_verdict_weak_zero () =
  (* store sweeps, load pinned: iteration 0's store feeds every later load *)
  (match
     sole_verdict
       (wrap "for (var i: int = 0; i < 100; i = i + 1) { a[i] = a[0] + i; }")
   with
  | Deptest.Analysis.Proven_lcd _ -> ()
  | v -> Alcotest.failf "store-sweeps case: expected proven-lcd, got %s" (verdict_str v));
  (* store pinned, load sweeps: the load never revisits cell 0 *)
  check_verdict "a[0] = a[i]" "proven-doall"
    (sole_verdict
       (wrap "for (var i: int = 1; i < 100; i = i + 1) { a[0] = a[i]; }"))

let test_verdict_trip_refuted () =
  (* distance 8 cannot manifest in a 4-iteration loop *)
  check_verdict "short trip" "proven-doall"
    (sole_verdict
       (wrap "for (var i: int = 0; i < 4; i = i + 1) { a[i + 8] = a[i]; }"))

let test_verdict_distinct_bases () =
  check_verdict "b[i] = a[i]" "proven-doall"
    (sole_verdict
       (wrap "for (var i: int = 0; i < 100; i = i + 1) { b[i] = a[i + 1]; }"))

let test_verdict_calls () =
  (* an impure user call inside a loop with loads poisons the verdict *)
  let v =
    match
      loop_summaries
        {|
fn bump(a: int[], i: int) { a[i] = a[i] + 1; }
fn main() -> int {
  var a: int[] = new int[64];
  var s: int = 0;
  for (var i: int = 0; i < 60; i = i + 1) {
    bump(a, i);
    s = s + a[i];
  }
  print_int(s);
  return 0;
}
|}
    with
    | [ d ] -> d.Deptest.Analysis.verdict
    | _ -> Alcotest.fail "expected one loop"
  in
  check_verdict "impure call" "unknown" v;
  (* pure builtins and print stay out of the way *)
  check_verdict "io builtin is no-mem" "proven-doall"
    (sole_verdict
       (wrap
          "for (var i: int = 0; i < 10; i = i + 1) { a[i] = i; print_int(i); }"))

(* every suite family should contain at least one statically proven loop *)
let test_suite_families_have_doall () =
  let by_family = Hashtbl.create 8 in
  List.iter
    (fun (b : Suites.Suite.benchmark) ->
      let fam = Suites.Suite.category_name b.Suites.Suite.category in
      let m = Frontend.compile_exn b.Suites.Suite.source in
      let ms = Loopa.Driver.prepare m in
      let has_doall =
        Hashtbl.fold
          (fun _ fs acc ->
            acc
            || Array.exists
                 (fun ls ->
                   ls.Loopa.Classify.dep.Deptest.Analysis.verdict
                   = Deptest.Analysis.Proven_doall)
                 fs.Loopa.Classify.loops)
          ms.Loopa.Classify.funcs false
      in
      let prev = Option.value ~default:false (Hashtbl.find_opt by_family fam) in
      Hashtbl.replace by_family fam (prev || has_doall))
    (Suites.Suite.all ());
  Alcotest.(check bool) "several families" true (Hashtbl.length by_family >= 2);
  Hashtbl.iter
    (fun fam ok ->
      Alcotest.(check bool) (fam ^ " has a statically proven doall loop") true ok)
    by_family

(* ---- pruning: observable and result-preserving ---- *)

let pruning_src =
  {|
fn main() -> int {
  var a: int[] = new int[256];
  var h: int = 1;
  for (var i: int = 0; i < 256; i = i + 1) { a[i] = a[i] + i; }  // proven doall
  for (var i: int = 1; i < 256; i = i + 1) { a[i] = a[i - 1] + 1; }  // real LCD
  h = a[255];
  print_int(h);
  return 0;
}
|}

let test_pruning_observable () =
  let pruned = Loopa.Driver.analyze_source ~static_prune:true pruning_src in
  let full = Loopa.Driver.analyze_source ~static_prune:false pruning_src in
  let ev a = a.Loopa.Driver.profile.Loopa.Profile.outcome.Interp.Machine.mem_events in
  let acc a =
    a.Loopa.Driver.profile.Loopa.Profile.outcome.Interp.Machine.mem_accesses
  in
  Alcotest.(check int) "same accesses executed" (acc full) (acc pruned);
  Alcotest.(check bool)
    (Printf.sprintf "fewer events when pruned (%d < %d)" (ev pruned) (ev full))
    true
    (ev pruned < ev full);
  (* and the evaluation is identical: pruning only drops provably dead events *)
  List.iter
    (fun cfg ->
      let rp = Loopa.Driver.evaluate pruned cfg in
      let rf = Loopa.Driver.evaluate full cfg in
      Alcotest.(check (float 1e-9))
        ("speedup under " ^ Loopa.Config.name cfg)
        rf.Loopa.Evaluate.speedup rp.Loopa.Evaluate.speedup;
      Alcotest.(check (float 1e-9))
        ("coverage under " ^ Loopa.Config.name cfg)
        rf.Loopa.Evaluate.coverage_pct rp.Loopa.Evaluate.coverage_pct)
    Loopa.Config.figure_ladder

(* the cross-validator on an unpruned profile: no Proven_doall loop may show
   a dynamic RAW manifestation *)
let test_crosscheck_clean () =
  List.iter
    (fun (b : Suites.Suite.benchmark) ->
      let a =
        Loopa.Driver.analyze_source ~fuel:50_000_000 ~static_prune:false
          b.Suites.Suite.source
      in
      match Loopa.Crosscheck.check a.Loopa.Driver.profile with
      | [] -> ()
      | vs ->
          Alcotest.failf "%s: unsound static verdicts:\n%s" b.Suites.Suite.name
            (String.concat "\n" (List.map Loopa.Crosscheck.violation_to_string vs)))
    (Suites.Suite.all ())

let () =
  Alcotest.run "deptest"
    [
      ( "subscript",
        [
          Alcotest.test_case "ziv" `Quick test_ziv;
          Alcotest.test_case "strong siv" `Quick test_strong_siv;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "weak siv" `Quick test_weak_siv;
          Alcotest.test_case "trip bounds" `Quick test_trip_bounds;
          Alcotest.test_case "banerjee box" `Quick test_banerjee;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "doall" `Quick test_verdict_doall;
          Alcotest.test_case "lcd distance 1" `Quick test_verdict_lcd_distance_1;
          Alcotest.test_case "gcd refuted" `Quick test_verdict_gcd;
          Alcotest.test_case "weak-zero" `Quick test_verdict_weak_zero;
          Alcotest.test_case "trip refuted" `Quick test_verdict_trip_refuted;
          Alcotest.test_case "distinct bases" `Quick test_verdict_distinct_bases;
          Alcotest.test_case "calls" `Quick test_verdict_calls;
          Alcotest.test_case "suite families" `Quick test_suite_families_have_doall;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "observable and sound" `Quick test_pruning_observable;
          Alcotest.test_case "crosscheck suites" `Slow test_crosscheck_clean;
        ] );
    ]
