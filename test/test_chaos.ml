(* Chaos-hardened supervision at the campaign level: deterministic fault
   schedules driven through the full runner — watchdog timeouts recorded
   and resumable, circuit-breaker degradation Forked -> Serial with a
   complete checkpoint, injected checkpoint-write failures healed by
   resume, byte-identical outcomes across same-seed runs, and salvage of
   torn checkpoint tails. The pool-level mechanics live in test_exec.ml;
   this file asserts the end-to-end invariants the `chaos` subcommand
   enforces. *)

open Campaign
module Chaos = Exec.Chaos
module J = Util.Json

let contains = Astring_contains.contains
let quiet _ = ()

(* small and well-behaved, with a loop worth profiling *)
let good_src =
  {|
fn main() -> int {
  var a: int[] = new int[32];
  for (var i: int = 0; i < 32; i = i + 1) { a[i] = i * 3; }
  var s: int = 0;
  for (var i: int = 0; i < 32; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return 0;
}
|}

let named n = List.init n (fun i -> (Printf.sprintf "t%02d" i, good_src))

let budgets ?watchdog () =
  { Runner.default_budgets with Runner.fuel = 1_000_000; watchdog_s = watchdog }

let with_tmp f =
  let path = Filename.temp_file "chaos-test-" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let checkpoint_lines path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

(* wall_s and telemetry are the only legitimately nondeterministic fields *)
let normalize line =
  match J.of_string line with
  | Ok (J.Obj fields) ->
      J.to_string
        (J.Obj
           (List.filter (fun (k, _) -> k <> "wall_s" && k <> "telemetry") fields))
  | _ -> line

let status_of (s : Runner.summary) name =
  match
    List.find_opt (fun (r : Runner.result) -> r.Runner.target = name) s.Runner.results
  with
  | Some r -> r.Runner.status
  | None -> Alcotest.failf "no result for %s" name

(* ---- watchdog: a SIGSTOP-stalled worker is reaped within the deadline ---- *)

let test_watchdog_reaps_stall_as_task_timeout () =
  let t0 = Unix.gettimeofday () in
  let s =
    Runner.run
      ~budgets:(budgets ~watchdog:1.0 ())
      ~log:quiet ~executor:(Runner.Forked 2)
      ~chaos:(Chaos.explicit [ (1, Chaos.Stall_self) ])
      (named 4)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match status_of s "t01" with
  | Runner.Errored (Runner.Task_timeout m) ->
      Alcotest.(check bool) "message names the watchdog" true
        (contains m "watchdog")
  | st ->
      Alcotest.failf "stalled task should be a task-timeout, got %s"
        (Runner.status_to_string st));
  List.iter
    (fun t ->
      match status_of s t with
      | Runner.Completed _ -> ()
      | st ->
          Alcotest.failf "%s should have completed, got %s" t
            (Runner.status_to_string st))
    [ "t00"; "t02"; "t03" ];
  Alcotest.(check bool)
    (Printf.sprintf "reaped within the deadline's order (%.2fs)" elapsed)
    true (elapsed < 10.0);
  Alcotest.(check (list (pair string int)))
    "failure breakdown" [ ("task-timeout", 1) ] s.Runner.failures

let test_task_timeout_codec_roundtrip () =
  let r =
    {
      Runner.target = "t";
      status = Runner.Errored (Runner.Task_timeout "exceeded 1s per-task watchdog deadline");
      attempts = 1;
      clock = 0;
      wall_s = 0.0;
    }
  in
  match Runner.result_of_json (Runner.result_to_json r) with
  | Ok r' -> (
      match r'.Runner.status with
      | Runner.Errored (Runner.Task_timeout m) ->
          Alcotest.(check bool) "message survives" true (contains m "watchdog")
      | st ->
          Alcotest.failf "class lost in the codec: %s" (Runner.status_to_string st))
  | Error e -> Alcotest.failf "decode failed: %s" e

(* ---- breaker: Forked degrades to Serial mid-run, checkpoint complete ---- *)

let test_breaker_degrades_forked_to_serial () =
  let n = 8 in
  with_tmp (fun ckpt ->
      let plan =
        Chaos.explicit (List.init n (fun i -> (i, Chaos.Kill_self)))
      in
      let s =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ckpt ~log:quiet
          ~executor:(Runner.Forked 2) ~chaos:plan ~breaker_threshold:2 (named n)
      in
      Alcotest.(check int) "every task classified" n (List.length s.Runner.results);
      Alcotest.(check bool) "some tasks finished after degradation" true
        (s.Runner.n_degraded >= 1);
      List.iter
        (fun (r : Runner.result) ->
          match r.Runner.status with
          | Runner.Errored (Runner.Worker_lost cause) ->
              (* degraded-serial simulation must report the exact cause the
                 pool's reaper would have *)
              Alcotest.(check string) "deterministic cause"
                "worker killed by SIGKILL" cause
          | st ->
              Alcotest.failf "%s: expected worker-lost, got %s" r.Runner.target
                (Runner.status_to_string st))
        s.Runner.results;
      Alcotest.(check int) "checkpoint is complete" n
        (List.length (checkpoint_lines ckpt)))

(* ---- same seed, same bytes ---- *)

let test_same_seed_byte_identical_checkpoints () =
  let n = 6 in
  (* pick the first seed whose schedule actually injects a lethal fault
     (and no stall: keep the test fast) — the probe is itself deterministic *)
  let seed =
    let rec find s =
      if s > 500 then Alcotest.fail "no suitable seed in range"
      else
        let c name = List.assoc name (Chaos.planned_counts (Chaos.seeded s) ~n) in
        if c "kill" + c "torn" + c "corrupt" >= 1 && c "stall" = 0 then s
        else find (s + 1)
    in
    find 0
  in
  let pass ckpt =
    ignore
      (Runner.run ~budgets:(budgets ()) ~checkpoint:ckpt ~log:quiet
         ~executor:(Runner.Forked 2) ~chaos:(Chaos.seeded seed) (named n))
  in
  with_tmp (fun a ->
      with_tmp (fun b ->
          pass a;
          pass b;
          let la = List.map normalize (checkpoint_lines a) in
          let lb = List.map normalize (checkpoint_lines b) in
          Alcotest.(check (list string)) "normalized checkpoints identical" la lb))

(* ---- injected checkpoint-write failures heal on resume ---- *)

let test_ckpt_fault_drops_line_and_resume_heals_it () =
  let n = 3 in
  with_tmp (fun ckpt ->
      (* write #0 (t00's line) fails with EIO; t01's worker is killed *)
      let plan =
        Chaos.explicit
          ~ckpt_faults:[ (0, Chaos.Eio) ]
          [ (1, Chaos.Kill_self) ]
      in
      let logs = ref [] in
      let s1 =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ckpt
          ~log:(fun m -> logs := m :: !logs)
          ~executor:(Runner.Forked 2) ~chaos:plan (named n)
      in
      Alcotest.(check int) "all classified despite the drop" n
        (List.length s1.Runner.results);
      Alcotest.(check int) "one line dropped" (n - 1)
        (List.length (checkpoint_lines ckpt));
      Alcotest.(check bool) "the drop is logged" true
        (List.exists (fun m -> contains m "EIO") !logs);
      (* resume without chaos: only the dropped task re-runs, the recorded
         loss is skipped, and the file ends complete *)
      let s2 =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ckpt ~resume:true
          ~log:quiet (named n)
      in
      Alcotest.(check int) "resume restores the surviving lines" (n - 1)
        s2.Runner.n_resumed;
      Alcotest.(check int) "resume classifies everything" n
        (List.length s2.Runner.results);
      (match status_of s2 "t00" with
      | Runner.Completed _ -> ()
      | st ->
          Alcotest.failf "dropped task should re-run to completion, got %s"
            (Runner.status_to_string st));
      (match status_of s2 "t01" with
      | Runner.Errored (Runner.Worker_lost _) -> ()
      | st ->
          Alcotest.failf "recorded loss should be skipped, got %s"
            (Runner.status_to_string st));
      Alcotest.(check int) "checkpoint now complete" n
        (List.length (checkpoint_lines ckpt)))

(* ---- chaos under resume converges ---- *)

let test_chaos_under_resume_converges () =
  let n = 3 in
  with_tmp (fun ckpt ->
      (* pass 1 drops write #1 (t01's loss entry) *)
      let plan =
        Chaos.explicit
          ~ckpt_faults:[ (1, Chaos.Eio) ]
          [ (1, Chaos.Kill_self) ]
      in
      ignore
        (Runner.run ~budgets:(budgets ()) ~checkpoint:ckpt ~log:quiet
           ~executor:(Runner.Forked 2) ~chaos:plan (named n));
      Alcotest.(check int) "pass 1 dropped one line" (n - 1)
        (List.length (checkpoint_lines ckpt));
      (* resume under the SAME plan: the only fresh task is t01, which now
         sits at fresh index 0 — out of the schedule's blast radius — so
         the campaign converges even with chaos still on *)
      let s2 =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ckpt ~resume:true
          ~log:quiet ~executor:(Runner.Forked 2) ~chaos:plan (named n)
      in
      Alcotest.(check int) "resume classifies everything" n
        (List.length s2.Runner.results);
      Alcotest.(check int) "checkpoint now complete" n
        (List.length (checkpoint_lines ckpt)))

(* ---- torn checkpoint tails are salvaged and truncated ---- *)

let test_torn_tail_salvage_on_resume () =
  let n = 3 in
  with_tmp (fun ckpt ->
      ignore
        (Runner.run ~budgets:(budgets ()) ~checkpoint:ckpt ~log:quiet (named 2));
      (* simulate a hard kill mid-write: a final fragment with no newline *)
      let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 ckpt in
      output_string oc "{\"target\":\"t9";
      close_out oc;
      let logs = ref [] in
      let s =
        Runner.run ~budgets:(budgets ()) ~checkpoint:ckpt ~resume:true
          ~log:(fun m -> logs := m :: !logs)
          (named n)
      in
      Alcotest.(check bool) "salvage is reported" true
        (List.exists (fun m -> contains m "torn tail dropped") !logs);
      Alcotest.(check int) "whole lines restored" 2 s.Runner.n_resumed;
      Alcotest.(check int) "everything classified" n
        (List.length s.Runner.results);
      (* the torn fragment must not have corrupted the appended line *)
      let lines = checkpoint_lines ckpt in
      Alcotest.(check int) "checkpoint complete and parseable" n
        (List.length lines);
      List.iter
        (fun l ->
          match J.of_string l with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "unparseable checkpoint line (%s): %s" e l)
        lines)

(* ---- shard-scoped fault plans (guarded parallel loop execution) ---- *)

let test_shard_plan_lookup_and_summary () =
  let plan =
    Chaos.shard_explicit
      [ ((0, 1), Chaos.Kill_self); ((3, 0), Chaos.Corrupt_result) ]
  in
  (match Chaos.shard_fault plan ~invocation:0 ~shard:1 with
  | Some Chaos.Kill_self -> ()
  | _ -> Alcotest.fail "explicit shard fault not found");
  Alcotest.(check bool) "unfaulted pair clean" true
    (Chaos.shard_fault plan ~invocation:0 ~shard:0 = None);
  let s = Chaos.shard_summary plan ~invocations:4 ~shards:2 in
  Alcotest.(check bool) "summary names kill" true (contains s "kill");
  Alcotest.(check bool) "summary names corrupt" true (contains s "corrupt")

(* heavy fault pressure, but no stalls (each stall costs a watchdog wait)
   and no delays (pure noise for these assertions) *)
let soak_rates =
  { Chaos.kill = 0.4; stall = 0.0; torn = 0.25; corrupt = 0.25; delay = 0.0; ckpt = 0.0 }

let soak_seed = 11

let test_shard_seeded_deterministic () =
  let grid plan =
    List.concat_map
      (fun inv ->
        List.map
          (fun s -> Chaos.shard_fault plan ~invocation:inv ~shard:s)
          [ 0; 1; 2; 3 ])
      (List.init 64 Fun.id)
  in
  let a = grid (Chaos.shard_seeded ~rates:soak_rates soak_seed) in
  Alcotest.(check bool) "same seed, same schedule" true
    (a = grid (Chaos.shard_seeded ~rates:soak_rates soak_seed));
  Alcotest.(check bool) "soak rates actually fault" true
    (List.exists Option.is_some a);
  (* shard lanes are keyed independently of task lanes: the same seed
     must not replay the task schedule onto the shards *)
  let t = Chaos.seeded ~rates:soak_rates soak_seed in
  let tasks =
    List.concat_map
      (fun inv ->
        List.map (fun s -> Chaos.task_fault t ((inv * 8191) + s)) [ 0; 1; 2; 3 ])
      (List.init 64 Fun.id)
  in
  Alcotest.(check bool) "shard lane independent of task lane" true (a <> tasks)

(* Every injected shard fault must be absorbed by rollback: the guarded
   parallel run stays byte-identical to the serial one, and infrastructure
   faults never quarantine the verdict. *)
let test_shard_faults_roll_back_to_serial () =
  let knobs =
    {
      Parrun.Runner.default_knobs with
      Parrun.Runner.jobs = 2;
      min_trip = 1;
      round_chunk = 8;
      watchdog_s = Some 2.0;
      chaos = Some (Chaos.shard_seeded ~rates:soak_rates soak_seed);
    }
  in
  match
    Parrun.Guard.run ~knobs ~predict:false ~target:"chaos_soak" good_src
  with
  | Error f -> Alcotest.fail ("guard failed: " ^ f.Loopa.Driver.message)
  | Ok r ->
      Alcotest.(check bool) "byte-identical under seeded shard faults" true
        r.Parrun.Guard.identical;
      Alcotest.(check (list string)) "no diffs" [] r.Parrun.Guard.diffs;
      Alcotest.(check int) "faults never quarantine" 0
        (Parrun.Quarantine.size
           (Parrun.Runner.quarantine r.Parrun.Guard.runner))

let () =
  Alcotest.run "chaos"
    [
      ( "watchdog",
        [
          Alcotest.test_case "SIGSTOP stall becomes task-timeout" `Quick
            test_watchdog_reaps_stall_as_task_timeout;
          Alcotest.test_case "task-timeout codec roundtrip" `Quick
            test_task_timeout_codec_roundtrip;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "Forked degrades to Serial mid-run" `Quick
            test_breaker_degrades_forked_to_serial;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same checkpoint bytes" `Quick
            test_same_seed_byte_identical_checkpoints;
        ] );
      ( "shards",
        [
          Alcotest.test_case "explicit plan lookup + summary" `Quick
            test_shard_plan_lookup_and_summary;
          Alcotest.test_case "seeded plan deterministic, lane-independent"
            `Quick test_shard_seeded_deterministic;
          Alcotest.test_case "seeded shard faults converge to serial" `Quick
            test_shard_faults_roll_back_to_serial;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "dropped line heals on resume" `Quick
            test_ckpt_fault_drops_line_and_resume_heals_it;
          Alcotest.test_case "chaos under resume converges" `Quick
            test_chaos_under_resume_converges;
          Alcotest.test_case "torn tail salvaged and truncated" `Quick
            test_torn_tail_salvage_on_resume;
        ] );
    ]
