(* The repro subsystem end to end: bundle codec round-trips, replay
   reproduces classified failures bit-for-bit, the shrinker reduces failing
   programs while preserving the failure class, and the campaign runner
   emits bundles that replay. *)

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

(* A deliberately padded (>= 30 lines) program whose third loop divides by
   a counter that reaches zero — a genuine div-by-zero trap, plenty of
   droppable structure around it for the shrinker. *)
let trap_src =
  {|fn helper(x: int) -> int {
  return x * 2 + 1;
}

fn scale(x: int, k: int) -> int {
  var r: int = x;
  r = r * k;
  return r + 1;
}

fn main() -> int {
  var acc: int = 0;
  var n: int = 40;
  var data: int[] = new int[n];
  for (var i: int = 0; i < n; i = i + 1) {
    data[i] = helper(i) + i * 3;
  }
  for (var i: int = 0; i < n; i = i + 1) {
    if (data[i] > 10) {
      acc = acc + data[i];
    } else {
      acc = acc + scale(data[i], 2);
    }
  }
  var d: int = 10;
  for (var i: int = 0; i < n; i = i + 1) {
    d = d - 1;
    acc = acc + acc / d;
  }
  print_int(acc);
  return 0;
}
|}

let healthy_src = {|fn main() -> int {
  print_int(42);
  return 0;
}
|}

let mk ?(fuel = 1_000_000) ?(configs = []) src =
  Repro.Bundle.make ~target:"test" ~stage:Loopa.Driver.Compile
    ~fingerprint:"unclassified" ~message:"" ~source:src ~fuel ~configs ()

let classify_exn b =
  match Repro.Pipeline.classify b with
  | Some b -> b
  | None -> Alcotest.fail "expected the pipeline to fail, but it succeeded"

(* ---- bundle codec ---- *)

let test_bundle_roundtrip () =
  let b =
    Repro.Bundle.make ~target:"181_mcf" ~stage:Loopa.Driver.Execute
      ~fingerprint:"trap:div_by_zero@5000" ~message:"injected division by zero"
      ~source:"fn main() -> int {\n  return 0;\n}\n"
      ~configs:[ Loopa.Config.best_pdoall; Loopa.Config.best_helix ]
      ~fuel:123_456 ~mem_limit:4096 ~max_depth:77 ~static_prune:false
      ~crosscheck:true ~check_invariants:true
      ~faults:[ (5000, Interp.Machine.Inject_div_by_zero); (9000, Interp.Machine.Inject_oob) ]
      ()
  in
  match Repro.Bundle.of_string (Repro.Bundle.to_string b) with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok b' ->
      Alcotest.(check bool) "bundle round-trips through JSON" true (b = b')

let test_bundle_rejects_garbage () =
  (match Repro.Bundle.of_string "not json at all" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Repro.Bundle.of_string "{\"version\": 1}" with
  | Ok _ -> Alcotest.fail "accepted a bundle with no target/stage/source"
  | Error _ -> ()

(* ---- fingerprints ---- *)

let test_fingerprints () =
  Alcotest.(check string)
    "class strips the qualifier" "trap:div_by_zero"
    (Loopa.Driver.fingerprint_class "trap:div_by_zero@123");
  Alcotest.(check string)
    "class of qualifier-free fingerprint" "budget:fuel"
    (Loopa.Driver.fingerprint_class "budget:fuel");
  Alcotest.(check bool)
    "strict match wants identical clocks" false
    (Loopa.Driver.same_fingerprint "trap:div_by_zero@1" "trap:div_by_zero@2");
  Alcotest.(check bool)
    "loose match compares classes" true
    (Loopa.Driver.same_fingerprint ~strict:false "trap:div_by_zero@1"
       "trap:div_by_zero@2");
  Alcotest.(check bool)
    "loose match still separates classes" false
    (Loopa.Driver.same_fingerprint ~strict:false "trap:div_by_zero@1"
       "trap:out_of_bounds@1")

(* ---- classification ---- *)

let test_classify_trap () =
  let b = classify_exn (mk trap_src) in
  Alcotest.(check string)
    "trap class" "trap:div_by_zero"
    (Loopa.Driver.fingerprint_class b.Repro.Bundle.fingerprint);
  Alcotest.(check string)
    "stage" "execute"
    (Loopa.Driver.stage_name b.Repro.Bundle.stage)

let test_classify_compile_error () =
  let b = classify_exn (mk "fn main() -> int {\n  var a: int = ;\n  return 0;\n}\n") in
  Alcotest.(check string)
    "compile class carries the position" "compile:syntax@2:16"
    b.Repro.Bundle.fingerprint

let test_classify_healthy () =
  match Repro.Pipeline.classify (mk healthy_src) with
  | None -> ()
  | Some b -> Alcotest.failf "healthy program classified as %s" b.Repro.Bundle.fingerprint

(* ---- replay ---- *)

let test_replay_reproduces () =
  let b = classify_exn (mk trap_src) in
  match Repro.Pipeline.replay b with
  | Repro.Pipeline.Reproduced -> ()
  | v -> Alcotest.failf "expected reproduced, got %s" (Repro.Pipeline.verdict_to_string v)

let test_replay_vanished () =
  let b = { (mk healthy_src) with Repro.Bundle.fingerprint = "trap:div_by_zero@100" } in
  match Repro.Pipeline.replay b with
  | Repro.Pipeline.Vanished -> ()
  | v -> Alcotest.failf "expected vanished, got %s" (Repro.Pipeline.verdict_to_string v)

let test_replay_changed () =
  let b = classify_exn (mk trap_src) in
  (* tamper with the clock: strict replay must notice *)
  let b = { b with Repro.Bundle.fingerprint = "trap:div_by_zero@1" } in
  match Repro.Pipeline.replay b with
  | Repro.Pipeline.Changed f ->
      Alcotest.(check string)
        "the new failure keeps the class" "trap:div_by_zero"
        (Loopa.Driver.fingerprint_class f.Loopa.Driver.fingerprint)
  | v -> Alcotest.failf "expected changed, got %s" (Repro.Pipeline.verdict_to_string v)

(* ---- shrinking ---- *)

let test_shrink_trap () =
  let b = classify_exn (mk trap_src) in
  let n0 = count_lines b.Repro.Bundle.source in
  Alcotest.(check bool) "the seed program is >= 30 lines" true (n0 >= 30);
  match Repro.Shrink.shrink b with
  | Error m -> Alcotest.failf "shrink failed: %s" m
  | Ok (sb, stats) ->
      let n1 = count_lines sb.Repro.Bundle.source in
      Alcotest.(check bool)
        (Printf.sprintf "strictly smaller (%d -> %d lines)" n0 n1)
        true (n1 < n0);
      Alcotest.(check bool) "accepted at least one reduction" true (stats.Repro.Shrink.accepted > 0);
      Alcotest.(check string)
        "failure class preserved" "trap:div_by_zero"
        (Loopa.Driver.fingerprint_class sb.Repro.Bundle.fingerprint);
      (* the minimized bundle's refreshed fingerprint replays strictly *)
      (match Repro.Pipeline.replay sb with
      | Repro.Pipeline.Reproduced -> ()
      | v ->
          Alcotest.failf "minimized bundle does not replay: %s"
            (Repro.Pipeline.verdict_to_string v))

let test_shrink_compile_error_falls_back_to_lines () =
  (* unbalanced brace up front: the source does not parse, so the AST path
     is unavailable and the shrinker must reduce line-by-line *)
  let src = "}\n" ^ trap_src in
  let b = classify_exn (mk src) in
  Alcotest.(check string)
    "classified as a syntax error" "compile:syntax"
    (Loopa.Driver.fingerprint_class b.Repro.Bundle.fingerprint);
  match Repro.Shrink.shrink b with
  | Error m -> Alcotest.failf "shrink failed: %s" m
  | Ok (sb, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "reduced %d -> %d lines" (count_lines src)
           (count_lines sb.Repro.Bundle.source))
        true
        (count_lines sb.Repro.Bundle.source < count_lines src);
      Alcotest.(check string)
        "still a syntax error" "compile:syntax"
        (Loopa.Driver.fingerprint_class sb.Repro.Bundle.fingerprint)

let test_shrink_rejects_healthy () =
  match Repro.Shrink.shrink (mk healthy_src) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shrinking a healthy bundle should refuse"

(* ---- campaign integration ---- *)

let test_campaign_emits_replayable_bundle () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "loopa-repro-test" in
  let budgets =
    { Campaign.Runner.default_budgets with Campaign.Runner.fuel = 1_000_000 }
  in
  let configs = [ Loopa.Config.best_pdoall ] in
  let summary =
    Campaign.Runner.run ~budgets ~configs
      ~faults_of:(fun t ->
        if t = "faulty" then [ (500, Interp.Machine.Inject_div_by_zero) ] else [])
      ~repro_dir:dir
      [ ("healthy", healthy_src); ("faulty", trap_src) ]
  in
  Alcotest.(check int) "one task errored" 1 summary.Campaign.Runner.n_errored;
  let path = Filename.concat dir "faulty.repro.json" in
  Alcotest.(check bool) "bundle file exists" true (Sys.file_exists path);
  Alcotest.(check bool)
    "healthy task emitted no bundle" false
    (Sys.file_exists (Filename.concat dir "healthy.repro.json"));
  match Repro.Bundle.load path with
  | Error m -> Alcotest.failf "bundle unreadable: %s" m
  | Ok b ->
      Alcotest.(check string)
        "bundle records the injected trap at its clock" "trap:div_by_zero@500"
        b.Repro.Bundle.fingerprint;
      Alcotest.(check bool)
        "bundle records the fault plan" true
        (b.Repro.Bundle.faults = [ (500, Interp.Machine.Inject_div_by_zero) ]);
      (match Repro.Pipeline.replay b with
      | Repro.Pipeline.Reproduced -> ()
      | v ->
          Alcotest.failf "campaign bundle does not replay: %s"
            (Repro.Pipeline.verdict_to_string v));
      Sys.remove path;
      Sys.rmdir dir

(* ---- fuzz-style bundles ---- *)

let test_fuzz_bundle_pipeline () =
  (* a healthy program under the fuzz invariants must pass them all *)
  let b =
    Repro.Bundle.make ~target:"fuzz-style" ~stage:Loopa.Driver.Fuzz
      ~fingerprint:"fuzz:unclassified" ~message:"" ~source:healthy_src
      ~configs:[ Loopa.Config.best_pdoall; Loopa.Config.best_helix ]
      ~fuel:1_000_000 ~static_prune:false ~crosscheck:true
      ~check_invariants:true ()
  in
  match Repro.Pipeline.run b with
  | Ok () -> ()
  | Error f ->
      Alcotest.failf "fuzz invariants rejected a healthy program: %s"
        (Loopa.Driver.failure_to_string f)

let () =
  Alcotest.run "repro"
    [
      ( "bundle",
        [
          Alcotest.test_case "json round-trip" `Quick test_bundle_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_bundle_rejects_garbage;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "class and matching" `Quick test_fingerprints ] );
      ( "classify",
        [
          Alcotest.test_case "trap" `Quick test_classify_trap;
          Alcotest.test_case "compile error" `Quick test_classify_compile_error;
          Alcotest.test_case "healthy" `Quick test_classify_healthy;
        ] );
      ( "replay",
        [
          Alcotest.test_case "reproduces" `Quick test_replay_reproduces;
          Alcotest.test_case "vanished" `Quick test_replay_vanished;
          Alcotest.test_case "changed" `Quick test_replay_changed;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "trap program" `Slow test_shrink_trap;
          Alcotest.test_case "compile error via lines" `Slow
            test_shrink_compile_error_falls_back_to_lines;
          Alcotest.test_case "refuses healthy bundles" `Quick test_shrink_rejects_healthy;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "emits a replayable bundle" `Quick
            test_campaign_emits_replayable_bundle;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "invariant pipeline" `Quick test_fuzz_bundle_pipeline ] );
    ]
