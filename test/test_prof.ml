(* Self-profiling invariants: the hotspot profiler's exact attribution
   partitions the machine clock (folded self-weights sum to
   instructions_retired), folded exports are byte-deterministic across
   runs, profiling never perturbs the guest (zero-cost-when-off parity),
   the sampler is a pure function of the clock, the perfdiff gate passes
   identical snapshots and catches a 2x slowdown, and the live endpoint
   serves the latest published /metrics and /status snapshots. *)

let contains = Astring_contains.contains

let src =
  {|
fn kernel(a: int[], n: int) -> int {
  var s: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    s = s + a[i] * 3;
  }
  return s;
}

fn main() -> int {
  var a: int[] = new int[200];
  for (var i: int = 0; i < 200; i = i + 1) {
    a[i] = i;
  }
  var total: int = 0;
  for (var r: int = 0; r < 10; r = r + 1) {
    total = total + kernel(a, 200);
  }
  print_int(total);
  return 0;
}
|}

let profile_with ?(sample_period = 100) src =
  let h = Prof.Hotspot.create ~sample_period () in
  let a = Loopa.Driver.analyze_source ~hotspot:h src in
  (h, a)

(* ---- exact attribution ---- *)

let test_folded_sums_to_clock () =
  let h, a = profile_with src in
  let clock = a.Loopa.Driver.profile.Loopa.Profile.outcome.Interp.Machine.clock in
  let folded_sum =
    List.fold_left (fun acc (_, w) -> acc + w) 0 (Prof.Hotspot.folded h)
  in
  Alcotest.(check int) "folded weights partition the clock" clock folded_sum;
  Alcotest.(check int) "total_instrs agrees" clock (Prof.Hotspot.total_instrs h);
  let opcode_sum =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Prof.Hotspot.opcode_counts h)
  in
  Alcotest.(check int) "opcode counters partition the clock" clock opcode_sum

let test_frames_qualified () =
  let h, _ = profile_with src in
  let keys = List.map fst (Prof.Hotspot.folded h) in
  Alcotest.(check bool) "kernel loop frame present" true
    (List.exists (fun k -> contains k "kernel:loop0") keys);
  Alcotest.(check bool) "stacks are root-first from main" true
    (List.for_all
       (fun k -> k = "(root)" || String.length k >= 4)
       keys)

(* ---- determinism ---- *)

let test_folded_byte_deterministic () =
  let render h =
    ( Prof.Flamegraph.collapsed (Prof.Hotspot.folded h),
      Prof.Flamegraph.collapsed (Prof.Hotspot.sampled h) )
  in
  let h1, _ = profile_with src in
  let h2, _ = profile_with src in
  let e1, s1 = render h1 and e2, s2 = render h2 in
  Alcotest.(check string) "exact folded byte-identical" e1 e2;
  Alcotest.(check string) "sampled folded byte-identical" s1 s2;
  Alcotest.(check bool) "profiles are non-trivial" true
    (String.length e1 > 0 && String.length s1 > 0)

let test_sampler_is_clock_derived () =
  let period = 250 in
  let h, a = profile_with ~sample_period:period src in
  let clock = a.Loopa.Driver.profile.Loopa.Profile.outcome.Interp.Machine.clock in
  Alcotest.(check int) "one sample per period of retired instructions"
    (clock / period) (Prof.Hotspot.n_samples h);
  let sample_sum =
    List.fold_left (fun acc (_, w) -> acc + w) 0 (Prof.Hotspot.sampled h)
  in
  Alcotest.(check int) "sampled weights sum to the sample count"
    (Prof.Hotspot.n_samples h) sample_sum

(* ---- zero-cost-when-off parity ---- *)

let test_profiling_does_not_perturb () =
  let plain = Loopa.Driver.analyze_source src in
  let _, profiled = profile_with src in
  let oc (a : Loopa.Driver.analysis) =
    a.Loopa.Driver.profile.Loopa.Profile.outcome
  in
  let o1 = oc plain and o2 = oc profiled in
  Alcotest.(check int) "same clock" o1.Interp.Machine.clock
    o2.Interp.Machine.clock;
  Alcotest.(check string) "same output" o1.Interp.Machine.output
    o2.Interp.Machine.output;
  Alcotest.(check int) "same heap high-water" o1.Interp.Machine.mem_words
    o2.Interp.Machine.mem_words;
  let speedup a =
    (Loopa.Driver.evaluate a Loopa.Config.best_pdoall).Loopa.Evaluate.speedup
  in
  Alcotest.(check (float 1e-9)) "same evaluation" (speedup plain)
    (speedup profiled)

let test_finish_idempotent_and_on_trap () =
  let h = Prof.Hotspot.create () in
  let trap_src =
    {|
fn main() -> int {
  var a: int[] = new int[4];
  for (var i: int = 0; i < 10; i = i + 1) {
    a[i] = i;
  }
  return 0;
}
|}
  in
  (match Loopa.Driver.analyze_source ~hotspot:h trap_src with
  | _ -> Alcotest.fail "expected an out-of-bounds trap"
  | exception Interp.Rvalue.Trap _ -> ());
  let total = Prof.Hotspot.total_instrs h in
  Alcotest.(check bool) "trapped run still attributed" true (total > 0);
  Prof.Hotspot.finish h;
  Alcotest.(check int) "finish is idempotent" total
    (Prof.Hotspot.total_instrs h)

(* ---- flamegraph emitters ---- *)

let test_collapsed_merges_and_sorts () =
  let out =
    Prof.Flamegraph.collapsed
      [ ("b;x", 2); ("a", 1); ("b;x", 3); ("zero", 0); ("neg", -4) ]
  in
  Alcotest.(check string) "merged, sorted, non-positive dropped" "a 1\nb;x 5\n"
    out

let test_speedscope_shape () =
  let j = Prof.Flamegraph.speedscope ~name:"t" [ ("main;f", 7); ("main", 3) ] in
  let s = Util.Json.to_string j in
  Alcotest.(check bool) "has schema" true
    (contains s "speedscope.app/file-format-schema.json");
  let member k j = Option.get (Util.Json.member k j) in
  let profile =
    match Util.Json.to_list (member "profiles" j) with
    | Some [ p ] -> p
    | _ -> Alcotest.fail "expected exactly one profile"
  in
  Alcotest.(check (option int)) "endValue is the total weight" (Some 10)
    (Util.Json.to_int (member "endValue" profile));
  let frames =
    Option.get (Util.Json.to_list (member "frames" (member "shared" j)))
  in
  Alcotest.(check int) "two distinct frames" 2 (List.length frames);
  let samples = Option.get (Util.Json.to_list (member "samples" profile)) in
  let weights = Option.get (Util.Json.to_list (member "weights" profile)) in
  Alcotest.(check int) "one weight per sample" (List.length samples)
    (List.length weights)

let test_write_files () =
  let h, _ = profile_with src in
  let dir = Filename.temp_file "prof_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let paths =
    Prof.Hotspot.write_files h ~base:(Filename.concat dir "k.folded") ~name:"k"
  in
  Alcotest.(check int) "three artifacts" 3 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " exists and is non-empty") true
        (Sys.file_exists p && (Unix.stat p).Unix.st_size > 0))
    paths;
  (* the .folded base suffix is stripped, not doubled *)
  Alcotest.(check bool) "no doubled suffix" false
    (List.exists (fun p -> contains p ".folded.folded") paths);
  List.iter Sys.remove paths;
  Unix.rmdir dir

(* ---- perfdiff ---- *)

let snapshot ~wall ~rate =
  Util.Json.Obj
    [
      ( "harness",
        Util.Json.Obj
          [
            ("quick", Util.Json.Bool true);
            ( "bench",
              Util.Json.Obj
                [
                  ("wall_s", Util.Json.Float wall);
                  ("tasks_per_s", Util.Json.Float rate);
                  ("n_benchmarks", Util.Json.Int 58);
                ] );
          ] );
    ]

let test_perfdiff_identical_passes () =
  let s = snapshot ~wall:1.0 ~rate:100.0 in
  let vs = Report.Perfdiff.compare_snapshots ~old_:s ~new_:s () in
  Alcotest.(check int) "two comparable series" 2 (List.length vs);
  Alcotest.(check int) "no regressions" 0
    (List.length (Report.Perfdiff.regressions vs))

let test_perfdiff_catches_2x_slowdown () =
  let old_ = snapshot ~wall:1.0 ~rate:100.0 in
  let new_ = snapshot ~wall:2.0 ~rate:50.0 in
  let regs =
    Report.Perfdiff.regressions
      (Report.Perfdiff.compare_snapshots ~old_ ~new_ ())
  in
  Alcotest.(check int) "both series regress" 2 (List.length regs);
  Alcotest.(check bool) "seconds series flagged lower-better" true
    (List.exists
       (fun v ->
         contains v.Report.Perfdiff.v_path "wall_s"
         && v.Report.Perfdiff.v_dir = Report.Perfdiff.Lower_better)
       regs)

let test_perfdiff_improvement_not_flagged () =
  let old_ = snapshot ~wall:2.0 ~rate:50.0 in
  let new_ = snapshot ~wall:1.0 ~rate:100.0 in
  let vs = Report.Perfdiff.compare_snapshots ~old_ ~new_ () in
  Alcotest.(check int) "improvements pass" 0
    (List.length (Report.Perfdiff.regressions vs));
  Alcotest.(check bool) "worse_by is negative" true
    (List.for_all (fun v -> v.Report.Perfdiff.v_worse_by < 0.0) vs)

let test_perfdiff_counts_skipped () =
  let s = snapshot ~wall:1.0 ~rate:100.0 in
  let vs = Report.Perfdiff.compare_snapshots ~old_:s ~new_:s () in
  Alcotest.(check bool) "n_benchmarks (a count) is not compared" false
    (List.exists
       (fun v -> contains v.Report.Perfdiff.v_path "n_benchmarks")
       vs)

let test_perfdiff_history_median () =
  let history =
    [
      snapshot ~wall:1.0 ~rate:100.0;
      snapshot ~wall:1.1 ~rate:95.0;
      snapshot ~wall:0.9 ~rate:105.0;
    ]
  in
  let ok =
    Report.Perfdiff.compare_history ~history
      ~new_:(snapshot ~wall:1.05 ~rate:98.0)
      ()
  in
  Alcotest.(check int) "within historical noise" 0
    (List.length (Report.Perfdiff.regressions ok));
  let bad =
    Report.Perfdiff.compare_history ~history
      ~new_:(snapshot ~wall:2.5 ~rate:40.0)
      ()
  in
  Alcotest.(check bool) "2.5x over the median regresses" true
    (Report.Perfdiff.regressions bad <> [])

(* ---- the live endpoint ---- *)

let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path
      in
      let _ = Unix.write_substring sock req 0 (String.length req) in
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      Buffer.contents buf)

(* the publish pipe and the responder's select loop race benignly; retry
   until the snapshot is visible rather than sleeping a fixed amount *)
let rec await_body ?(tries = 50) port path needle =
  let resp = http_get port path in
  if contains resp needle then resp
  else if tries = 0 then
    Alcotest.fail
      (Printf.sprintf "%s never served %S (last response: %s)" path needle
         resp)
  else begin
    Unix.sleepf 0.02;
    await_body ~tries:(tries - 1) port path needle
  end

let test_serve_endpoint () =
  let srv = Prof.Serve.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Prof.Serve.stop srv)
    (fun () ->
      let port = Prof.Serve.port srv in
      Alcotest.(check bool) "port 0 picked a real port" true (port > 0);
      Prof.Serve.publish srv ~metrics:"loopa_test_metric 42\n"
        ~status:(Util.Json.Obj [ ("phase", Util.Json.String "warm") ]);
      let m = await_body port "/metrics" "loopa_test_metric 42" in
      Alcotest.(check bool) "metrics content-type" true
        (contains m "text/plain");
      let s = await_body port "/status" "\"phase\":\"warm\"" in
      Alcotest.(check bool) "status is JSON" true
        (contains s "application/json");
      (* the latest publish wins *)
      Prof.Serve.publish srv ~metrics:"loopa_test_metric 43\n"
        ~status:(Util.Json.Obj [ ("phase", Util.Json.String "done") ]);
      ignore (await_body port "/metrics" "loopa_test_metric 43");
      ignore (await_body port "/status" "\"phase\":\"done\"");
      let missing = http_get port "/nope" in
      Alcotest.(check bool) "unknown path is 404" true
        (contains missing "404"))

let test_serve_stop_idempotent () =
  let srv = Prof.Serve.start ~port:0 () in
  Prof.Serve.publish srv ~metrics:"x 1\n" ~status:Util.Json.Null;
  Prof.Serve.stop srv;
  Prof.Serve.stop srv;
  (* publishing after stop is a silent no-op, not a crash *)
  Prof.Serve.publish srv ~metrics:"x 2\n" ~status:Util.Json.Null

let () =
  Alcotest.run "prof"
    [
      ( "hotspot",
        [
          Alcotest.test_case "folded sums to machine clock" `Quick
            test_folded_sums_to_clock;
          Alcotest.test_case "loop frames qualified" `Quick
            test_frames_qualified;
          Alcotest.test_case "folded byte-deterministic" `Quick
            test_folded_byte_deterministic;
          Alcotest.test_case "sampler derived from clock" `Quick
            test_sampler_is_clock_derived;
          Alcotest.test_case "profiling does not perturb" `Quick
            test_profiling_does_not_perturb;
          Alcotest.test_case "finish on trap + idempotent" `Quick
            test_finish_idempotent_and_on_trap;
        ] );
      ( "flamegraph",
        [
          Alcotest.test_case "collapsed merges and sorts" `Quick
            test_collapsed_merges_and_sorts;
          Alcotest.test_case "speedscope shape" `Quick test_speedscope_shape;
          Alcotest.test_case "write_files artifacts" `Quick test_write_files;
        ] );
      ( "perfdiff",
        [
          Alcotest.test_case "identical snapshots pass" `Quick
            test_perfdiff_identical_passes;
          Alcotest.test_case "2x slowdown caught" `Quick
            test_perfdiff_catches_2x_slowdown;
          Alcotest.test_case "improvement not flagged" `Quick
            test_perfdiff_improvement_not_flagged;
          Alcotest.test_case "counts skipped" `Quick test_perfdiff_counts_skipped;
          Alcotest.test_case "history median gate" `Quick
            test_perfdiff_history_median;
        ] );
      ( "serve",
        [
          Alcotest.test_case "metrics and status served" `Quick
            test_serve_endpoint;
          Alcotest.test_case "stop idempotent, publish after stop" `Quick
            test_serve_stop_idempotent;
        ] );
    ]
