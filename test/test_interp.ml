(* Interpreter tests: scalar operation semantics (against OCaml's Int64 /
   float as ground truth), memory model, builtins, the instruction-count
   clock, fuel and depth limits, and the instrumentation event stream. *)

open Interp.Rvalue

let run ?hooks ?fuel src =
  let m = Frontend.compile_exn src in
  Cfg.Loop_simplify.run_module m;
  Interp.Machine.run_main (Interp.Machine.create ?hooks ?fuel m)

let output ?fuel src = String.trim (run ?fuel src).Interp.Machine.output

(* ---- scalar op units ---- *)

let test_ibinop_semantics () =
  let ck got want = Alcotest.(check int64) "ibinop" want got in
  ck (Interp.Machine.exec_ibinop Ir.Instr.Add 3L 4L) 7L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Sub 3L 4L) (-1L);
  ck (Interp.Machine.exec_ibinop Ir.Instr.Mul 3L 4L) 12L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Sdiv 7L 2L) 3L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Sdiv (-7L) 2L) (-3L);
  ck (Interp.Machine.exec_ibinop Ir.Instr.Srem 7L 3L) 1L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Srem (-7L) 3L) (-1L);
  (* min_int / -1 must not trap *)
  ck (Interp.Machine.exec_ibinop Ir.Instr.Sdiv Int64.min_int (-1L)) Int64.min_int;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Srem Int64.min_int (-1L)) 0L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.And 12L 10L) 8L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Or 12L 10L) 14L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Xor 12L 10L) 6L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Shl 1L 4L) 16L;
  ck (Interp.Machine.exec_ibinop Ir.Instr.Ashr (-16L) 2L) (-4L);
  ck (Interp.Machine.exec_ibinop Ir.Instr.Lshr (-1L) 60L) 15L;
  (* shift amounts are masked to 6 bits *)
  ck (Interp.Machine.exec_ibinop Ir.Instr.Shl 1L 64L) 1L

let test_div_by_zero () =
  Alcotest.check_raises "div0" (Trap (Div_by_zero, "division by zero")) (fun () ->
      ignore (Interp.Machine.exec_ibinop Ir.Instr.Sdiv 1L 0L));
  Alcotest.check_raises "rem0" (Trap (Div_by_zero, "remainder by zero")) (fun () ->
      ignore (Interp.Machine.exec_ibinop Ir.Instr.Srem 1L 0L))

let prop_ibinop_matches_int64 =
  QCheck.Test.make ~name:"add/sub/mul/and/or/xor match Int64" ~count:500
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      Interp.Machine.exec_ibinop Ir.Instr.Add a b = Int64.add a b
      && Interp.Machine.exec_ibinop Ir.Instr.Sub a b = Int64.sub a b
      && Interp.Machine.exec_ibinop Ir.Instr.Mul a b = Int64.mul a b
      && Interp.Machine.exec_ibinop Ir.Instr.And a b = Int64.logand a b
      && Interp.Machine.exec_ibinop Ir.Instr.Or a b = Int64.logor a b
      && Interp.Machine.exec_ibinop Ir.Instr.Xor a b = Int64.logxor a b)

let prop_icmp_total_order =
  QCheck.Test.make ~name:"icmp consistent with Int64.compare" ~count:500
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let c = Int64.compare a b in
      Interp.Machine.exec_icmp Ir.Instr.Islt (Vint a) (Vint b) = (c < 0)
      && Interp.Machine.exec_icmp Ir.Instr.Isle (Vint a) (Vint b) = (c <= 0)
      && Interp.Machine.exec_icmp Ir.Instr.Ieq (Vint a) (Vint b) = (c = 0))

let test_fcmp_nan () =
  Alcotest.(check bool) "nan not lt" false
    (Interp.Machine.exec_fcmp Ir.Instr.Flt Float.nan 1.0);
  Alcotest.(check bool) "nan ne" true
    (Interp.Machine.exec_fcmp Ir.Instr.Fne Float.nan Float.nan)

(* ---- memory ---- *)

let test_memory_model () =
  let mem = Interp.Rvalue.create [] in
  let base = Interp.Rvalue.alloc mem 4 in
  Interp.Rvalue.store mem base (Vint 42L);
  Alcotest.(check bool) "load back" true (Interp.Rvalue.load mem base = Vint 42L);
  Alcotest.(check bool) "zero init" true (Interp.Rvalue.load mem (base + 3) = Vint 0L);
  Alcotest.check_raises "null deref"
    (Trap (Out_of_bounds, "memory access out of bounds at address 0")) (fun () ->
      ignore (Interp.Rvalue.load mem 0));
  Alcotest.check_raises "oob"
    (Trap
       ( Out_of_bounds,
         Printf.sprintf "memory access out of bounds at address %d" (base + 4) ))
    (fun () -> ignore (Interp.Rvalue.load mem (base + 4)));
  Alcotest.(check int) "words in use" (base + 4) (Interp.Rvalue.words_in_use mem)

let test_memory_limit () =
  let mem = Interp.Rvalue.create ~limit:100 [] in
  Alcotest.(check bool) "small alloc ok" true (Interp.Rvalue.alloc mem 50 > 0);
  match Interp.Rvalue.alloc mem 100 with
  | _ -> Alcotest.fail "expected heap budget stop"
  | exception Budget_stop Heap -> ()

let test_globals_in_memory () =
  let mem =
    Interp.Rvalue.create
      [ { Ir.Func.gname = "g"; gty = Ir.Types.I64; ginit = Ir.Types.Cint 9L } ]
  in
  let a = Interp.Rvalue.global_addr mem "g" in
  Alcotest.(check bool) "initialized" true (Interp.Rvalue.load mem a = Vint 9L);
  Alcotest.check_raises "unknown global" (Runtime_error "unknown global @nope")
    (fun () -> ignore (Interp.Rvalue.global_addr mem "nope"))

(* ---- whole-program behaviour ---- *)

let test_clock_counts_instructions () =
  (* straight-line: alloc-free program with a known instruction count *)
  let out = run "fn main() -> int { return 1 + 2; }" in
  (* add + ret = 2 *)
  Alcotest.(check int) "tiny program cost" 2 out.Interp.Machine.clock

let test_fuel () =
  (* running out of fuel is no longer an error: the machine stops cleanly
     and reports the truncation in the outcome *)
  let out =
    run ~fuel:100
      "fn main() -> int { var x: int = 0; while (true) { x = x + 1; } return x; }"
  in
  Alcotest.(check bool) "truncated by fuel" true
    (out.Interp.Machine.stop = Interp.Machine.Truncated Fuel);
  Alcotest.(check bool) "no return value" true (out.Interp.Machine.ret = None);
  Alcotest.(check bool) "stopped at the budget" true (out.Interp.Machine.clock <= 101)

let test_recursion_limit () =
  let out =
    run "fn f(n: int) -> int { return f(n + 1); } fn main() -> int { return f(0); }"
  in
  Alcotest.(check bool) "truncated by call depth" true
    (out.Interp.Machine.stop = Interp.Machine.Truncated Call_depth)

let test_rand_deterministic () =
  let src =
    {|
fn main() -> int {
  srand(42);
  var a: int = rand();
  var b: int = rand();
  srand(42);
  if (rand() == a && rand() == b && a != b) { print_int(1); } else { print_int(0); }
  return 0;
}
|}
  in
  Alcotest.(check string) "rand reseeds deterministically" "1" (output src)

let test_arrcopy_arrfill () =
  let src =
    {|
fn main() -> int {
  var a: int[] = new int[8];
  var b: int[] = new int[8];
  for (var i: int = 0; i < 8; i = i + 1) { a[i] = i * i; }
  arrcopy(b, a, 8);
  arrfill(a, 5, 4);
  print_int(b[7] * 1000 + a[0] * 100 + a[3] * 10 + a[4]);
  return 0;
}
|}
  in
  (* b[7]=49; a[0],a[3]=5; a[4]=16: 49*1000 + 500 + 50 + 16 *)
  Alcotest.(check string) "arrcopy/arrfill" "49566" (output src)

let test_print_builtins () =
  Alcotest.(check string) "print_char" "Hi"
    (output "fn main() -> int { print_char(72); print_char(105); return 0; }")

(* ---- instrumentation events ---- *)

type counts = {
  mutable enters : int;
  mutable iters : int;
  mutable exits : int;
  mutable reads : int;
  mutable writes : int;
  mutable calls : int;
  mutable builtins : int;
}

let test_event_stream () =
  let c =
    { enters = 0; iters = 0; exits = 0; reads = 0; writes = 0; calls = 0; builtins = 0 }
  in
  let hooks =
    {
      Interp.Events.no_hooks with
      Interp.Events.on_loop_enter = (fun ~lid:_ ~clock:_ -> c.enters <- c.enters + 1);
      on_loop_iter = (fun ~lid:_ ~clock:_ -> c.iters <- c.iters + 1);
      on_loop_exit = (fun ~lid:_ ~clock:_ -> c.exits <- c.exits + 1);
      on_mem_access =
        (fun ~addr:_ ~is_write ~clock:_ ->
          if is_write then c.writes <- c.writes + 1 else c.reads <- c.reads + 1);
      on_call_enter = (fun ~fname:_ ~clock:_ -> c.calls <- c.calls + 1);
      on_builtin_call = (fun ~name:_ ~clock:_ -> c.builtins <- c.builtins + 1);
    }
  in
  let src =
    {|
fn helper(a: int[]) { a[0] = a[0] + 1; }
fn main() -> int {
  var a: int[] = new int[4];
  for (var i: int = 0; i < 5; i = i + 1) {
    helper(a);
  }
  print_int(a[0]);
  return 0;
}
|}
  in
  ignore (run ~hooks src);
  (* one invocation; the header is reached once on entry and then 5 more
     times (after each body execution, including the final failing test) *)
  Alcotest.(check int) "enters" 1 c.enters;
  Alcotest.(check int) "iters" 5 c.iters;
  Alcotest.(check int) "exits" 1 c.exits;
  (* helper: 1 read + 1 write per call; new stores length (1 write); the
     final a[0] read and len read... count exact reads/writes *)
  Alcotest.(check int) "calls = main + 5 helpers" 6 c.calls;
  Alcotest.(check int) "builtins = 1 print" 1 c.builtins;
  Alcotest.(check int) "writes = len + 5 helper stores" 6 c.writes;
  Alcotest.(check int) "reads = 5 helper loads + final load" 6 c.reads

let test_loop_exit_on_return () =
  (* returning from inside a loop must still close the loop *)
  let c =
    { enters = 0; iters = 0; exits = 0; reads = 0; writes = 0; calls = 0; builtins = 0 }
  in
  let hooks =
    {
      Interp.Events.no_hooks with
      Interp.Events.on_loop_enter = (fun ~lid:_ ~clock:_ -> c.enters <- c.enters + 1);
      on_loop_exit = (fun ~lid:_ ~clock:_ -> c.exits <- c.exits + 1);
    }
  in
  let src =
    {|
fn main() -> int {
  for (var i: int = 0; i < 100; i = i + 1) {
    if (i == 3) { return i; }
  }
  return 0;
}
|}
  in
  ignore (run ~hooks src);
  Alcotest.(check int) "enter once" 1 c.enters;
  Alcotest.(check int) "exit closed on return" 1 c.exits

(* ---- graceful degradation ---- *)

(* hooks that track enter/exit balance for loops and calls *)
type balance = {
  mutable loop_enters : int;
  mutable loop_exits : int;
  mutable call_enters : int;
  mutable call_exits : int;
}

let balance_hooks b =
  {
    Interp.Events.no_hooks with
    Interp.Events.on_loop_enter =
      (fun ~lid:_ ~clock:_ -> b.loop_enters <- b.loop_enters + 1);
    on_loop_exit = (fun ~lid:_ ~clock:_ -> b.loop_exits <- b.loop_exits + 1);
    on_call_enter = (fun ~fname:_ ~clock:_ -> b.call_enters <- b.call_enters + 1);
    on_call_exit = (fun ~fname:_ ~clock:_ -> b.call_exits <- b.call_exits + 1);
  }

(* a loop nest that calls a helper which itself loops: exercises unwinding
   through both open loops and open call frames *)
let nested_src =
  {|
fn helper(n: int) -> int {
  var s: int = 0;
  for (var i: int = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}
fn main() -> int {
  var acc: int = 0;
  for (var i: int = 0; i < 1000; i = i + 1) {
    for (var j: int = 0; j < 10; j = j + 1) {
      acc = acc + helper(20);
    }
  }
  print_int(acc);
  return acc;
}
|}

let test_truncation_closes_events () =
  let b = { loop_enters = 0; loop_exits = 0; call_enters = 0; call_exits = 0 } in
  let out = run ~hooks:(balance_hooks b) ~fuel:5_000 nested_src in
  Alcotest.(check bool) "truncated by fuel" true
    (out.Interp.Machine.stop = Interp.Machine.Truncated Fuel);
  (* even though the machine stopped mid-nest, every enter must have been
     matched by a synthetic exit so downstream listeners see a well-formed
     stream *)
  Alcotest.(check int) "loops balanced" b.loop_enters b.loop_exits;
  Alcotest.(check int) "calls balanced" b.call_enters b.call_exits;
  Alcotest.(check bool) "made progress" true (b.loop_enters > 0)

let test_depth_truncation_closes_events () =
  let b = { loop_enters = 0; loop_exits = 0; call_enters = 0; call_exits = 0 } in
  let out =
    run ~hooks:(balance_hooks b)
      "fn f(n: int) -> int { return f(n + 1); } fn main() -> int { return f(0); }"
  in
  Alcotest.(check bool) "truncated by depth" true
    (out.Interp.Machine.stop = Interp.Machine.Truncated Call_depth);
  Alcotest.(check int) "calls balanced" b.call_enters b.call_exits

let test_counter_accessors () =
  let m = Frontend.compile_exn nested_src in
  Cfg.Loop_simplify.run_module m;
  let machine = Interp.Machine.create m in
  let out = Interp.Machine.run_main machine in
  (* the live accessors and the outcome record must agree *)
  Alcotest.(check int) "instructions = clock" out.Interp.Machine.clock
    (Interp.Machine.instructions_retired machine);
  Alcotest.(check int) "mem accesses" out.Interp.Machine.mem_accesses
    (Interp.Machine.mem_accesses machine);
  Alcotest.(check int) "mem events" out.Interp.Machine.mem_events
    (Interp.Machine.mem_events machine);
  Alcotest.(check int) "pruned = accesses - events"
    (out.Interp.Machine.mem_accesses - out.Interp.Machine.mem_events)
    (Interp.Machine.mem_events_pruned machine);
  (* and stay readable when the run ends in a trap, where no outcome record
     exists — the path the driver's counter publication depends on *)
  let faulty =
    Interp.Machine.create ~faults:[ (500, Interp.Machine.Inject_div_by_zero) ] m
  in
  (match Interp.Machine.run_main faulty with
  | _ -> Alcotest.fail "expected injected trap"
  | exception Trap (Div_by_zero, _) -> ());
  Alcotest.(check bool) "instructions readable after trap" true
    (Interp.Machine.instructions_retired faulty >= 500);
  Alcotest.(check bool) "accesses readable after trap" true
    (Interp.Machine.mem_accesses faulty >= Interp.Machine.mem_events faulty)

let test_program_div_by_zero_traps () =
  match run "fn main() -> int { var z: int = 0; return 1 / z; }" with
  | _ -> Alcotest.fail "expected a div-by-zero trap"
  | exception Trap (Div_by_zero, _) -> ()

let test_fault_injection () =
  let m = Frontend.compile_exn nested_src in
  Cfg.Loop_simplify.run_module m;
  (* a div-by-zero injected at clock 500 must surface as a Trap *)
  (match
     Interp.Machine.run_main
       (Interp.Machine.create ~faults:[ (500, Interp.Machine.Inject_div_by_zero) ] m)
   with
  | _ -> Alcotest.fail "expected injected trap"
  | exception Trap (Div_by_zero, msg) ->
      Alcotest.(check bool) "injected message" true
        (Astring_contains.contains msg "injected"));
  (* an injected fuel-out behaves exactly like running out of fuel *)
  let b = { loop_enters = 0; loop_exits = 0; call_enters = 0; call_exits = 0 } in
  let out =
    Interp.Machine.run_main
      (Interp.Machine.create ~hooks:(balance_hooks b)
         ~faults:[ (500, Interp.Machine.Inject_fuel_out) ]
         m)
  in
  Alcotest.(check bool) "injected fuel stop" true
    (out.Interp.Machine.stop = Interp.Machine.Truncated Fuel);
  Alcotest.(check int) "loops balanced" b.loop_enters b.loop_exits;
  Alcotest.(check int) "calls balanced" b.call_enters b.call_exits

let () =
  Alcotest.run "interp"
    [
      ( "scalars",
        [
          Alcotest.test_case "ibinop semantics" `Quick test_ibinop_semantics;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "fcmp nan" `Quick test_fcmp_nan;
          QCheck_alcotest.to_alcotest prop_ibinop_matches_int64;
          QCheck_alcotest.to_alcotest prop_icmp_total_order;
        ] );
      ( "memory",
        [
          Alcotest.test_case "model" `Quick test_memory_model;
          Alcotest.test_case "limit" `Quick test_memory_limit;
          Alcotest.test_case "globals" `Quick test_globals_in_memory;
        ] );
      ( "programs",
        [
          Alcotest.test_case "clock" `Quick test_clock_counts_instructions;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "recursion limit" `Quick test_recursion_limit;
          Alcotest.test_case "rand deterministic" `Quick test_rand_deterministic;
          Alcotest.test_case "arrcopy/arrfill" `Quick test_arrcopy_arrfill;
          Alcotest.test_case "print builtins" `Quick test_print_builtins;
        ] );
      ( "events",
        [
          Alcotest.test_case "event stream" `Quick test_event_stream;
          Alcotest.test_case "loop exit on return" `Quick test_loop_exit_on_return;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "fuel truncation closes events" `Quick
            test_truncation_closes_events;
          Alcotest.test_case "depth truncation closes events" `Quick
            test_depth_truncation_closes_events;
          Alcotest.test_case "program div-by-zero traps" `Quick
            test_program_div_by_zero_traps;
          Alcotest.test_case "fault injection" `Quick test_fault_injection;
          Alcotest.test_case "counter accessors" `Quick test_counter_accessors;
        ] );
    ]
