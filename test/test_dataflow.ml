(* The dataflow layer: interval arithmetic soundness (overflow always widens
   to top), the generic fixpoint engine on adversarial CFGs (nested loops,
   multiple back-edges into one header, unreachable blocks, a chain that
   diverges without widening), value-range precision end-to-end through the
   front-end, known-bits nonzero facts, the parallel-safety auditor's
   exclusion procedure, liveness as the backward engine client, the
   range-driven verdict upgrades on the registry benchmarks, and the lint
   driver's diagnostics (rules, severities, JSON shape, fingerprint
   stability). *)

open Ir.Types

module I = Util.Interval

let itv = Alcotest.testable (Fmt.of_to_string I.to_string) I.equal

(* ---- interval arithmetic: any overflow must produce top ---- *)

let test_interval_overflow () =
  let near_max = I.of_bounds (Int64.sub Int64.max_int 1L) Int64.max_int in
  Alcotest.check itv "add wraps to top" I.top (I.add near_max (I.const 5L));
  Alcotest.check itv "mul wraps to top" I.top
    (I.mul (I.const 0x4000_0000_0000_0000L) (I.const 2L));
  Alcotest.check itv "neg min_int wraps to top" I.top (I.neg (I.const Int64.min_int));
  Alcotest.check itv "sub wraps to top" I.top
    (I.sub (I.const Int64.min_int) (I.const 1L));
  (* the checked scalar helpers report the same overflows *)
  Alcotest.(check bool) "add64 overflow" true (I.add64 Int64.max_int 1L = None);
  Alcotest.(check bool) "mul64 overflow" true (I.mul64 Int64.min_int (-1L) = None);
  Alcotest.(check bool) "neg64 overflow" true (I.neg64 Int64.min_int = None);
  Alcotest.(check bool) "add64 fine" true (I.add64 3L 4L = Some 7L)

let test_interval_lattice () =
  Alcotest.check itv "join" (I.of_bounds 1L 9L)
    (I.join (I.of_bounds 1L 4L) (I.of_bounds 7L 9L));
  Alcotest.check itv "meet" (I.of_bounds 3L 4L)
    (I.meet (I.of_bounds 1L 4L) (I.of_bounds 3L 9L));
  Alcotest.check itv "disjoint meet is bot" I.bot
    (I.meet (I.of_bounds 1L 2L) (I.of_bounds 5L 9L));
  Alcotest.(check bool) "bot absorbs join" true
    (I.equal (I.join I.bot (I.const 3L)) (I.const 3L));
  (* widening only moves unstable bounds, and only outward *)
  Alcotest.check itv "widen grows hi"
    (I.of_bounds 0L Int64.max_int)
    (I.widen ~prev:(I.of_bounds 0L 10L) ~next:(I.of_bounds 0L 11L));
  Alcotest.check itv "widen stable is identity" (I.of_bounds 0L 10L)
    (I.widen ~prev:(I.of_bounds 0L 10L) ~next:(I.of_bounds 0L 10L));
  Alcotest.check itv "remove endpoint" (I.of_bounds 1L 10L)
    (I.remove_point (I.of_bounds 0L 10L) 0L);
  Alcotest.check itv "remove interior is identity" (I.of_bounds 0L 10L)
    (I.remove_point (I.of_bounds 0L 10L) 5L);
  Alcotest.check itv "hull0 spans to zero" (I.of_bounds 0L 7L) (I.hull0 (I.of_bounds 3L 7L))

(* ---- exposed transfer pieces ---- *)

let test_transfer_pieces () =
  let open Dataflow.Range in
  Alcotest.check itv "3 < 10 is true" (I.const 1L)
    (icmp_itv Ir.Instr.Islt (I.const 3L) (I.const 10L));
  Alcotest.check itv "10 < 3 is false" (I.const 0L)
    (icmp_itv Ir.Instr.Islt (I.const 10L) (I.const 3L));
  Alcotest.check itv "overlap is unknown bool" (I.of_bounds 0L 1L)
    (icmp_itv Ir.Instr.Islt (I.of_bounds 0L 9L) (I.of_bounds 5L 6L));
  Alcotest.check itv "srem by 8, top dividend" (I.of_bounds (-7L) 7L)
    (ibinop_itv Ir.Instr.Srem I.top (I.const 8L));
  Alcotest.check itv "srem by 8, nonneg dividend" (I.of_bounds 0L 7L)
    (ibinop_itv Ir.Instr.Srem (I.of_bounds 0L 1000L) (I.const 8L));
  Alcotest.check itv "mul" (I.of_bounds 8L 15L)
    (ibinop_itv Ir.Instr.Mul (I.of_bounds 2L 3L) (I.of_bounds 4L 5L));
  Alcotest.check itv "shl overflow is top" I.top
    (ibinop_itv Ir.Instr.Shl (I.const 1L) (I.const 63L))

(* ---- engine on adversarial CFGs ----

   Hand-built CFGs (same helper as test_cfg): each block gets a trivial
   terminator realizing the given successor lists. *)

let func_of_edges ~entry (succs : int list array) : Ir.Func.t =
  let fn = Ir.Func.create ~name:"g" ~params:[] ~ret:None in
  Array.iteri (fun _ _ -> ignore (Ir.Func.add_block fn)) succs;
  fn.Ir.Func.entry <- entry;
  Array.iteri
    (fun b ss ->
      match ss with
      | [] -> ignore (Ir.Func.append_instr fn b ~ty:None (Ir.Instr.Ret None))
      | [ t ] -> ignore (Ir.Func.append_instr fn b ~ty:None (Ir.Instr.Br t))
      | [ t1; t2 ] ->
          ignore
            (Ir.Func.append_instr fn b ~ty:None
               (Ir.Instr.Cond_br (bool_ true, t1, t2)))
      | _ -> invalid_arg "func_of_edges: at most 2 successors")
    succs;
  fn

module IS = Set.Make (Int)

(* Reachability domain: the state at a block is the set of blocks on some
   path to it. Finite lattice (set union over block ids), so no widening is
   needed — the adversarial-CFG tests assert the engine still terminates
   within its visit budget and computes the exact fixpoint. *)
module Reach = Dataflow.Engine.Make (struct
  type state = IS.t

  let equal = IS.equal
  let join = IS.union
  let widen ~prev:_ ~next = next
  let transfer b s = IS.add b s
  let transfer_edge ~src:_ ~dst:_ s = s
end)

let reach_of fn =
  Reach.run (Cfg.Graph.build fn) ~init:IS.empty

let blocks res b =
  match Reach.output res b with
  | Some s -> List.sort compare (IS.elements s)
  | None -> [ -1 ]

let test_engine_nested_loops () =
  (* 0 -> 1(outer hdr) -> {2(inner hdr), 5(exit)}; 2 -> {3(inner body), 4};
     3 -> 2 (inner back-edge); 4 -> 1 (outer back-edge) *)
  let fn = func_of_edges ~entry:0 [| [ 1 ]; [ 2; 5 ]; [ 3; 4 ]; [ 2 ]; [ 1 ]; [] |] in
  let res = reach_of fn in
  Alcotest.(check (list int)) "outer header sees both latches"
    [ 0; 1; 2; 3; 4 ] (blocks res 1);
  Alcotest.(check (list int)) "inner header sees inner latch"
    [ 0; 1; 2; 3; 4 ] (blocks res 2);
  Alcotest.(check (list int)) "exit" [ 0; 1; 2; 3; 4; 5 ] (blocks res 5);
  Alcotest.(check bool) "terminates inside budget" true (Reach.visits res <= 6 * 6)

let test_engine_multiple_backedges () =
  (* two distinct back-edges into the same header: 2 -> 1 and 3 -> 1 *)
  let fn = func_of_edges ~entry:0 [| [ 1 ]; [ 2; 4 ]; [ 1; 3 ]; [ 1 ]; [] |] in
  let res = reach_of fn in
  Alcotest.(check (list int)) "header joins both back-edges"
    [ 0; 1; 2; 3 ] (blocks res 1);
  Alcotest.(check (list int)) "exit" [ 0; 1; 2; 3; 4 ] (blocks res 4)

let test_engine_unreachable () =
  (* block 2 points into the live CFG but nothing reaches it *)
  let fn = func_of_edges ~entry:0 [| [ 1 ]; []; [ 1 ] |] in
  let res = reach_of fn in
  Alcotest.(check bool) "unreachable input is None" true (Reach.input res 2 = None);
  Alcotest.(check bool) "unreachable output is None" true (Reach.output res 2 = None);
  Alcotest.(check (list int)) "reachable unaffected" [ 0; 1 ] (blocks res 1)

(* Counter domain with an infinite ascending chain: the loop body adds
   [1,1] every trip, so a fixpoint only exists through widening. *)
module Counter (W : sig
  val widen : prev:I.t -> next:I.t -> I.t
end) =
Dataflow.Engine.Make (struct
  type state = I.t

  let equal = I.equal
  let join = I.join
  let widen = W.widen
  let transfer b s = if b = 2 then I.add s (I.const 1L) else s
  let transfer_edge ~src:_ ~dst:_ s = s
end)

module Counter_widened = Counter (struct
  let widen = I.widen
end)

module Counter_naive = Counter (struct
  let widen ~prev:_ ~next = next
end)

let test_engine_widening_required () =
  (* 0 -> 1(header) -> {2(body), 3(exit)}; 2 -> 1 *)
  let fn = func_of_edges ~entry:0 [| [ 1 ]; [ 2; 3 ]; [ 1 ]; [] |] in
  let cfg = Cfg.Graph.build fn in
  let res = Counter_widened.run cfg ~init:(I.const 0L) in
  (match Counter_widened.output res 1 with
  | Some s ->
      Alcotest.(check bool) "0 stays in the widened range" true (I.mem 0L s);
      Alcotest.(check bool) "large counts covered" true (I.mem 1_000_000L s)
  | None -> Alcotest.fail "header unreachable?");
  Alcotest.(check bool) "few visits with widening" true
    (Counter_widened.visits res <= 4 * 8);
  Alcotest.check_raises "diverges without widening"
    (Dataflow.Engine.Diverged 1)
    (fun () -> ignore (Counter_naive.run ~max_visits:40 cfg ~init:(I.const 0L)))

(* ---- range analysis end-to-end ---- *)

let compile src = Frontend.compile_exn src

let classify src =
  let m = compile src in
  Cfg.Loop_simplify.run_module m;
  Loopa.Classify.analyze_module m

let func_static ms name = Loopa.Classify.func_static ms name

let test_range_phi_bounds () =
  (* the canonical counter loop: i's header phi must be bounded by the
     widen/narrow pair, not stuck at top *)
  let ms =
    classify
      "fn main() -> int {\n\
      \  var s: int = 0;\n\
      \  for (var i: int = 0; i < 10; i = i + 1) { s = s + 2; }\n\
      \  print_int(s);\n\
       }\n"
  in
  let fs = func_static ms "main" in
  let bounded = ref 0 in
  Array.iter
    (fun (ls : Loopa.Classify.loop_static) ->
      Array.iter
        (fun (pi : Loopa.Classify.phi_info) ->
          let r = pi.Loopa.Classify.range in
          if (not (I.is_top r)) && not (I.is_bot r) then incr bounded;
          (* the IV phi must stay within [0, 10] *)
          if I.subset r (I.of_bounds 0L 10L) then
            Alcotest.(check bool) "iv range plausible" true (I.mem 0L r))
        ls.Loopa.Classify.phis)
    fs.Loopa.Classify.loops;
  Alcotest.(check bool) "at least one header phi proven bounded" true (!bounded >= 1)

let test_range_visits_bounded () =
  (* nested counters converge in few ascending visits *)
  let m =
    compile
      "fn main() -> int {\n\
      \  var s: int = 0;\n\
      \  for (var i: int = 0; i < 100; i = i + 1) {\n\
      \    for (var j: int = 0; j < 100; j = j + 1) { s = s + i + j; }\n\
      \  }\n\
      \  print_int(s);\n\
       }\n"
  in
  Cfg.Loop_simplify.run_module m;
  List.iter
    (fun fn ->
      let r = Dataflow.Range.analyze fn in
      let n_blocks = Ir.Func.num_blocks fn in
      Alcotest.(check bool)
        (Printf.sprintf "%s visits %d within budget" fn.Ir.Func.fname
           (Dataflow.Range.visits r))
        true
        (Dataflow.Range.visits r <= 16 * (n_blocks + 1)))
    m.Ir.Func.funcs

(* ---- known bits ---- *)

let test_bits_nonzero () =
  let m =
    compile
      "fn f(x: int) -> int {\n\
      \  var y: int = (x | 1);\n\
      \  return y;\n\
       }\n\
       fn main() -> int { print_int(f(6)); }\n"
  in
  let fn = List.find (fun f -> f.Ir.Func.fname = "f") m.Ir.Func.funcs in
  let bits = Dataflow.Bits.analyze fn in
  let found = ref false in
  Ir.Func.iter_instrs
    (fun (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Ibinop (Ir.Instr.Or, _, _) ->
          found := true;
          Alcotest.(check bool) "x|1 proven nonzero" true
            (Dataflow.Bits.known_nonzero bits (Reg i.Ir.Instr.id))
      | _ -> ())
    fn;
  Alcotest.(check bool) "or instr present" true !found;
  Alcotest.(check bool) "const 0 not nonzero" false
    (Dataflow.Bits.known_nonzero bits (int_ 0));
  Alcotest.(check bool) "const 5 nonzero" true
    (Dataflow.Bits.known_nonzero bits (int_ 5))

(* ---- auditor exclusion procedure ---- *)

let test_pair_excluded () =
  let ex = Dataflow.Audit.pair_excluded in
  (* strong SIV (a=0, b=1): distance d = c must land in [1, m] *)
  Alcotest.(check bool) "distance beyond window" true
    (ex ~a:0L ~b:1L ~c:(I.const 48L) ~m:(Some 47L));
  Alcotest.(check bool) "distance inside window" false
    (ex ~a:0L ~b:1L ~c:(I.const 10L) ~m:(Some 47L));
  Alcotest.(check bool) "negative distance impossible" true
    (ex ~a:0L ~b:1L ~c:(I.const (-3L)) ~m:None);
  Alcotest.(check bool) "unbounded window keeps it" false
    (ex ~a:0L ~b:1L ~c:(I.const 5L) ~m:None);
  (* interval c: the rspeed01 shape, c in [1,15] vs attainable [-m,-1] *)
  Alcotest.(check bool) "positive offset vs negative hull" true
    (ex ~a:0L ~b:(-1L) ~c:(I.of_bounds 1L 15L) ~m:(Some 63L));
  Alcotest.(check bool) "straddling zero not excluded" false
    (ex ~a:0L ~b:(-1L) ~c:(I.of_bounds (-2L) 2L) ~m:(Some 63L));
  (* gcd filter: 2i + 2d = odd has no integer solution *)
  Alcotest.(check bool) "gcd refutes odd constant" true
    (ex ~a:2L ~b:2L ~c:(I.const 7L) ~m:(Some 100L));
  Alcotest.(check bool) "gcd divides, solution exists" false
    (ex ~a:2L ~b:2L ~c:(I.const 6L) ~m:(Some 100L))

(* ---- liveness: the backward engine client ---- *)

let test_liveness_invariant () =
  (* universal SSA invariant: a non-phi use of a register defined in another
     block implies the register is live-in at the use's block *)
  let m =
    compile
      "fn main() -> int {\n\
      \  var a: int = 3;\n\
      \  var s: int = 0;\n\
      \  for (var i: int = 0; i < 8; i = i + 1) {\n\
      \    if (i < 4) { s = s + a; } else { s = s - a; }\n\
      \  }\n\
      \  print_int(s);\n\
       }\n"
  in
  Cfg.Loop_simplify.run_module m;
  List.iter
    (fun fn ->
      let live = Dataflow.Liveness.analyze fn in
      Ir.Func.iter_instrs
        (fun (i : Ir.Instr.t) ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Phi _ -> ()
          | k ->
              List.iter
                (fun v ->
                  match v with
                  | Reg r when (Ir.Func.instr fn r).Ir.Instr.block <> i.Ir.Instr.block
                    -> (
                      match Dataflow.Liveness.live_in live i.Ir.Instr.block with
                      | Some s ->
                          Alcotest.(check bool)
                            (Printf.sprintf "%%%d live into bb%d" r i.Ir.Instr.block)
                            true
                            (Dataflow.Liveness.ISet.mem r s)
                      | None -> Alcotest.fail "use in unreachable block")
                  | _ -> ())
                (Ir.Instr.operands k))
        fn)
    m.Ir.Func.funcs

(* ---- benchmark verdict upgrades (the acceptance delta) ---- *)

let bench_source name =
  match Suites.Suite.find name with
  | Some b -> b.Suites.Suite.source
  | None -> Alcotest.failf "benchmark %s not registered" name

let test_rspeed_upgrade () =
  let ms = classify (bench_source "rspeed01") in
  let base, fin = Loopa.Classify.unknown_delta ms in
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer unknowns (%d -> %d)" base fin)
    true (fin < base);
  let fs = func_static ms "smooth_window" in
  let ls = fs.Loopa.Classify.loops.(0) in
  Alcotest.(check bool) "baseline unknown" true
    (ls.Loopa.Classify.dep_baseline = Deptest.Analysis.Unknown);
  Alcotest.(check string) "strengthened to doall" "proven-doall"
    (Deptest.Analysis.verdict_to_string ls.Loopa.Classify.dep.Deptest.Analysis.verdict);
  Alcotest.(check bool) "flagged range-resolved" true
    (Loopa.Classify.range_resolved ls);
  Alcotest.(check bool) "audit certified" true
    (ls.Loopa.Classify.audit = Some Dataflow.Audit.Certified)

let test_puwmod_upgrade () =
  let ms = classify (bench_source "puwmod01") in
  let fs = func_static ms "decay_tail" in
  let ls = fs.Loopa.Classify.loops.(0) in
  (match ls.Loopa.Classify.dep_baseline with
  | Deptest.Analysis.Proven_lcd _ -> ()
  | v ->
      Alcotest.failf "expected lcd baseline, got %s"
        (Deptest.Analysis.verdict_to_string v));
  Alcotest.(check bool) "trip bound proven" true
    (ls.Loopa.Classify.trip_bound = Some 48L);
  Alcotest.(check string) "strengthened to doall" "proven-doall"
    (Deptest.Analysis.verdict_to_string ls.Loopa.Classify.dep.Deptest.Analysis.verdict);
  Alcotest.(check bool) "flagged range-resolved" true
    (Loopa.Classify.range_resolved ls);
  Alcotest.(check bool) "audit certified" true
    (ls.Loopa.Classify.audit = Some Dataflow.Audit.Certified)

let test_bench_range_soundness () =
  (* execute both benchmarks with every header phi observed: no dynamic
     value may escape its proven interval, and no Proven_doall loop may
     show a dynamic RAW *)
  List.iter
    (fun name ->
      let a =
        Loopa.Driver.analyze_source ~fuel:50_000_000 ~static_prune:false
          ~observe_ranges:true (bench_source name)
      in
      (match Loopa.Crosscheck.check a.Loopa.Driver.profile with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: %s" name (Loopa.Crosscheck.violation_to_string v));
      match Loopa.Crosscheck.check_ranges a.Loopa.Driver.profile with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: %s" name
            (Loopa.Crosscheck.range_violation_to_string v))
    [ "rspeed01"; "puwmod01" ]

(* ---- builtin effect table (shared spec) ---- *)

let test_builtin_table () =
  let sig_of name =
    match Ir.Builtins.find name with
    | Some s -> s
    | None -> Alcotest.failf "builtin %s missing" name
  in
  Alcotest.(check bool) "sqrt pure" true ((sig_of "sqrt").Ir.Builtins.safety = Ir.Builtins.Pure);
  Alcotest.(check bool) "sqrt no mem" true ((sig_of "sqrt").Ir.Builtins.mem = Ir.Builtins.No_mem);
  Alcotest.(check bool) "rand hidden state" true
    ((sig_of "rand").Ir.Builtins.safety = Ir.Builtins.Global_state);
  Alcotest.(check bool) "arrcopy reads+writes" true
    ((sig_of "arrcopy").Ir.Builtins.mem = Ir.Builtins.Reads_writes);
  Alcotest.(check bool) "arrcopy thread-safe" true
    ((sig_of "arrcopy").Ir.Builtins.safety = Ir.Builtins.Thread_safe);
  Alcotest.(check bool) "print_int is io" true
    ((sig_of "print_int").Ir.Builtins.safety = Ir.Builtins.Io);
  Alcotest.(check bool) "unknown name rejected" false (Ir.Builtins.is_builtin "nope")

(* ---- lint driver ---- *)

let lint src = Loopa.Lint.run (compile src)

let rules ds = List.map (fun d -> d.Loopa.Lint.rule) ds

let test_lint_div_by_zero () =
  let ds =
    lint
      "fn f(a: int) -> int {\n\
      \  var z: int = 0;\n\
      \  return a / z;\n\
       }\n\
       fn main() -> int { print_int(f(7)); }\n"
  in
  let hits =
    List.filter (fun d -> d.Loopa.Lint.rule = "range-div-by-zero") ds
  in
  (match hits with
  | [ d ] ->
      Alcotest.(check bool) "always-zero divisor is an error" true
        (d.Loopa.Lint.severity = Loopa.Lint.Error);
      Alcotest.(check bool) "located in f" true (d.Loopa.Lint.fname = Some "f")
  | _ -> Alcotest.failf "expected 1 div-by-zero, got %d" (List.length hits));
  Alcotest.(check bool) "report has errors" true (Loopa.Lint.has_errors ds)

let test_lint_nonzero_suppression () =
  (* known-bits proves (x|1) nonzero even though its interval straddles 0 *)
  let ds =
    lint
      "fn f(a: int, x: int) -> int {\n\
      \  var y: int = (x | 1);\n\
      \  return a / y;\n\
       }\n\
       fn main() -> int { print_int(f(7, 2)); }\n"
  in
  Alcotest.(check bool) "no div-by-zero diagnostic" false
    (List.mem "range-div-by-zero" (rules ds))

let test_lint_shift_and_branch () =
  let ds =
    lint
      "fn f(a: int, s: int) -> int {\n\
      \  var z: int = 3;\n\
      \  var r: int = 0;\n\
      \  if (z < 10) { r = (a << s); }\n\
      \  return r;\n\
       }\n\
       fn main() -> int { print_int(f(7, 2)); }\n"
  in
  Alcotest.(check bool) "unbounded shift amount warns" true
    (List.exists
       (fun d ->
         d.Loopa.Lint.rule = "range-shift-overflow"
         && d.Loopa.Lint.severity = Loopa.Lint.Warning)
       ds);
  Alcotest.(check bool) "constant guard reported dead" true
    (List.exists
       (fun d ->
         d.Loopa.Lint.rule = "range-dead-branch"
         && d.Loopa.Lint.severity = Loopa.Lint.Info)
       ds);
  Alcotest.(check bool) "infos are not errors" false (Loopa.Lint.has_errors ds)

let test_lint_fingerprint_stability () =
  let src =
    "fn f(a: int) -> int {\n\
    \  var z: int = 0;\n\
    \  return a / z;\n\
     }\n\
     fn main() -> int { print_int(f(7)); }\n"
  in
  let fp ds = List.map (fun d -> d.Loopa.Lint.fingerprint) ds in
  let d1 = lint src and d2 = lint src in
  Alcotest.(check (list string)) "fingerprints stable across runs" (fp d1) (fp d2);
  List.iter
    (fun d ->
      let f = d.Loopa.Lint.fingerprint in
      Alcotest.(check bool)
        (Printf.sprintf "%s has rule:hash8 shape" f)
        true
        (String.length f = String.length d.Loopa.Lint.rule + 9
        && String.sub f 0 (String.length d.Loopa.Lint.rule) = d.Loopa.Lint.rule
        && f.[String.length d.Loopa.Lint.rule] = ':'))
    d1

let test_lint_json_shape () =
  let ds =
    lint
      "fn f(a: int) -> int {\n\
      \  var z: int = 0;\n\
      \  return a / z;\n\
       }\n\
       fn main() -> int { print_int(f(7)); }\n"
  in
  let j = Loopa.Lint.report_to_json ~file:"t.loop" ds in
  (* must round-trip through the serializer *)
  let j =
    match Util.Json.of_string (Util.Json.to_string j) with
    | Ok j -> j
    | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  in
  let int_member k =
    match Util.Json.member k j with
    | Some (Util.Json.Int n) -> n
    | _ -> Alcotest.failf "member %s missing or not an int" k
  in
  Alcotest.(check int) "version" 1 (int_member "version");
  Alcotest.(check bool) "errors counted" true (int_member "errors" >= 1);
  (match Util.Json.member "diagnostics" j with
  | Some (Util.Json.List l) ->
      Alcotest.(check int) "all diagnostics serialized" (List.length ds) (List.length l);
      List.iter
        (fun dj ->
          List.iter
            (fun k ->
              if Util.Json.member k dj = None then
                Alcotest.failf "diagnostic missing key %s" k)
            [ "rule"; "severity"; "fingerprint"; "function"; "loop"; "instr"; "message" ])
        l
  | _ -> Alcotest.fail "diagnostics list missing");
  match Util.Json.member "file" j with
  | Some (Util.Json.String "t.loop") -> ()
  | _ -> Alcotest.fail "file member wrong"

let test_lint_structural_gate () =
  (* a module that fails the verifier must report only structural errors:
     classification is skipped, not trusted *)
  let fn = func_of_edges ~entry:0 [| [ 1 ]; [] |] in
  (* break it: a branch to a block that does not exist *)
  Ir.Func.set_kind fn 0 (Ir.Instr.Br 7);
  let m = Ir.Func.create_module () in
  Ir.Func.add_func m fn;
  let ds = Loopa.Lint.run m in
  Alcotest.(check bool) "verifier rule fires" true
    (List.exists (fun d -> d.Loopa.Lint.rule = "verifier") ds);
  Alcotest.(check bool) "all structural" true
    (List.for_all (fun d -> d.Loopa.Lint.rule = "verifier" || d.Loopa.Lint.rule = "ssa") ds)

let () =
  Alcotest.run "dataflow"
    [
      ( "interval",
        [
          Alcotest.test_case "overflow widens to top" `Quick test_interval_overflow;
          Alcotest.test_case "lattice operations" `Quick test_interval_lattice;
          Alcotest.test_case "transfer pieces" `Quick test_transfer_pieces;
        ] );
      ( "engine",
        [
          Alcotest.test_case "nested loops" `Quick test_engine_nested_loops;
          Alcotest.test_case "multiple back-edges" `Quick test_engine_multiple_backedges;
          Alcotest.test_case "unreachable blocks" `Quick test_engine_unreachable;
          Alcotest.test_case "widening required" `Quick test_engine_widening_required;
        ] );
      ( "range",
        [
          Alcotest.test_case "header phi bounds" `Quick test_range_phi_bounds;
          Alcotest.test_case "visit budget" `Quick test_range_visits_bounded;
        ] );
      ( "facts",
        [
          Alcotest.test_case "known-bits nonzero" `Quick test_bits_nonzero;
          Alcotest.test_case "auditor pair exclusion" `Quick test_pair_excluded;
          Alcotest.test_case "liveness invariant" `Quick test_liveness_invariant;
          Alcotest.test_case "builtin effect table" `Quick test_builtin_table;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "rspeed01 range upgrade" `Quick test_rspeed_upgrade;
          Alcotest.test_case "puwmod01 trip-bound upgrade" `Quick test_puwmod_upgrade;
          Alcotest.test_case "dynamic range soundness" `Slow test_bench_range_soundness;
        ] );
      ( "lint",
        [
          Alcotest.test_case "div-by-zero error" `Quick test_lint_div_by_zero;
          Alcotest.test_case "nonzero suppression" `Quick test_lint_nonzero_suppression;
          Alcotest.test_case "shift + dead branch" `Quick test_lint_shift_and_branch;
          Alcotest.test_case "fingerprint stability" `Quick test_lint_fingerprint_stability;
          Alcotest.test_case "json shape" `Quick test_lint_json_shape;
          Alcotest.test_case "structural gate" `Quick test_lint_structural_gate;
        ] );
    ]
