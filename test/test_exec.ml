(* The exec subsystem: IPC framing over real pipes (roundtrip, messages
   larger than the pipe buffer, clean EOF vs torn frames) and the worker
   pool's contract — index-ordered outcomes, contiguous on_ordered replay,
   work-stealing when the queue dries up, fault isolation (a killed worker
   costs exactly its in-flight task and is respawned), worker epilogues,
   and prompt shutdown under should_stop. *)

module J = Util.Json
module Ipc = Exec.Ipc
module Pool = Exec.Pool

let contains = Astring_contains.contains

let json =
  Alcotest.testable
    (fun fmt j -> Format.pp_print_string fmt (J.to_string j))
    (fun a b -> J.to_string a = J.to_string b)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

(* ---- IPC framing ---- *)

let test_ipc_roundtrip () =
  with_pipe (fun r w ->
      let msgs =
        [
          J.Obj [ ("op", J.String "chunk"); ("tasks", J.List [ J.Int 1; J.Int 2 ]) ];
          J.Null;
          J.List [ J.Float 1.5; J.Bool true; J.String "x\"y\n" ];
        ]
      in
      List.iter (Ipc.write w) msgs;
      List.iter
        (fun m ->
          match Ipc.read r with
          | Ipc.Msg got -> Alcotest.check json "frame" m got
          | Ipc.Eof -> Alcotest.fail "unexpected EOF")
        msgs)

(* A frame bigger than any pipe buffer must cross intact — this is what a
   worker's result-with-span-snapshot payload looks like. The writer must
   be a separate process (a single process would deadlock on the full
   pipe). *)
let test_ipc_large_message () =
  with_pipe (fun r w ->
      let big = J.Obj [ ("blob", J.String (String.make 300_000 'x')) ] in
      match Unix.fork () with
      | 0 ->
          Unix.close r;
          (try Ipc.write w big with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close w;
          (match Ipc.read r with
          | Ipc.Msg got -> Alcotest.check json "large frame" big got
          | Ipc.Eof -> Alcotest.fail "unexpected EOF");
          ignore (Unix.waitpid [] pid))

let test_ipc_eof_at_boundary () =
  with_pipe (fun r w ->
      Ipc.write w (J.Int 7);
      Unix.close w;
      (match Ipc.read r with
      | Ipc.Msg got -> Alcotest.check json "last frame" (J.Int 7) got
      | Ipc.Eof -> Alcotest.fail "early EOF");
      match Ipc.read r with
      | Ipc.Eof -> ()
      | Ipc.Msg _ -> Alcotest.fail "expected EOF at frame boundary")

let test_ipc_torn_frame () =
  (* a header promising more bytes than ever arrive is a protocol error,
     not a silent truncation *)
  with_pipe (fun r w ->
      let header = Bytes.of_string "\x00\x00\x00\x10" (* 16-byte payload *) in
      ignore (Unix.write w header 0 4);
      ignore (Unix.write_substring w "{\"a\"" 0 4);
      Unix.close w;
      match Ipc.read r with
      | exception Ipc.Protocol_error m ->
          Alcotest.(check bool) "names the payload" true (contains m "payload")
      | Ipc.Msg _ | Ipc.Eof -> Alcotest.fail "torn frame not detected")

let test_ipc_oversized_frame () =
  with_pipe (fun r w ->
      (* header claiming 128 MiB, over the 64 MiB cap *)
      let header = Bytes.of_string "\x08\x00\x00\x00" in
      ignore (Unix.write w header 0 4);
      match Ipc.read r with
      | exception Ipc.Protocol_error m ->
          Alcotest.(check bool) "names the limit" true (contains m "limit")
      | Ipc.Msg _ | Ipc.Eof -> Alcotest.fail "oversized frame not rejected")

(* ---- pool: ordering ---- *)

let task_index payload = Option.value ~default:(-1) (J.to_int payload)

let test_pool_outcomes_in_index_order () =
  let n = 12 in
  let ordered = ref [] in
  let completions = ref 0 in
  let work payload =
    let i = task_index payload in
    (* stagger completions so they genuinely arrive out of index order *)
    if i mod 3 = 0 then Unix.sleepf 0.05;
    J.Int (i * 10)
  in
  let outcomes, stats =
    Pool.run ~jobs:4 ~work
      ~on_complete:(fun _ _ -> incr completions)
      ~on_ordered:(fun i _ -> ordered := i :: !ordered)
      (Array.init n (fun i -> J.Int i))
  in
  Alcotest.(check int) "every task completed once" n !completions;
  Alcotest.(check (list int))
    "on_ordered replays in task order"
    (List.init n (fun i -> i))
    (List.rev !ordered);
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Done r) -> Alcotest.check json "result" (J.Int (i * 10)) r
      | Some (Pool.Lost c) -> Alcotest.fail ("task lost: " ^ c)
      | None -> Alcotest.fail "undecided task")
    outcomes;
  Alcotest.(check int) "no losses" 0 stats.Pool.tasks_lost;
  Alcotest.(check int) "initial fleet only" 4 stats.Pool.forked

(* ---- pool: work-stealing ---- *)

let test_pool_steals_from_straggler () =
  (* jobs=2, max_chunk=8, 12 tasks: the first chunks are 3 tasks each, and
     task 0 sleeps — so one worker finishes the whole tail while the other
     still sits on unstarted chunk-mates, which the parent must steal back. *)
  let work payload =
    let i = task_index payload in
    if i = 0 then Unix.sleepf 0.5;
    J.Int i
  in
  let outcomes, stats =
    Pool.run ~jobs:2 ~max_chunk:8 ~work (Array.init 12 (fun i -> J.Int i))
  in
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Done r) -> Alcotest.check json "result" (J.Int i) r
      | _ -> Alcotest.fail "task lost or undecided")
    outcomes;
  Alcotest.(check bool)
    ("at least one steal, got " ^ string_of_int stats.Pool.steals)
    true (stats.Pool.steals >= 1)

(* ---- pool: fault isolation ---- *)

let test_pool_killed_worker_costs_one_task () =
  let victim = 3 in
  let work payload =
    let i = task_index payload in
    if i = victim then Unix.kill (Unix.getpid ()) Sys.sigkill;
    J.Int i
  in
  let outcomes, stats =
    Pool.run ~jobs:2 ~max_chunk:1 ~work (Array.init 8 (fun i -> J.Int i))
  in
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Lost cause) ->
          Alcotest.(check int) "only the victim is lost" victim i;
          Alcotest.(check bool) "cause names the signal" true
            (contains cause "SIGKILL")
      | Some (Pool.Done r) -> Alcotest.check json "survivor result" (J.Int i) r
      | None -> Alcotest.fail "undecided task")
    outcomes;
  Alcotest.(check int) "exactly one task lost" 1 stats.Pool.tasks_lost;
  Alcotest.(check bool) "the dead worker was respawned" true
    (stats.Pool.respawned >= 1);
  Alcotest.(check int) "forked = fleet + respawns"
    (2 + stats.Pool.respawned) stats.Pool.forked

let test_pool_worker_exception_is_lost_not_fatal () =
  let work payload =
    let i = task_index payload in
    if i = 2 then failwith "boom";
    J.Int i
  in
  let outcomes, stats =
    Pool.run ~jobs:2 ~work (Array.init 6 (fun i -> J.Int i))
  in
  (match outcomes.(2) with
  | Some (Pool.Lost cause) ->
      Alcotest.(check bool) "cause carries the exception" true
        (contains cause "boom")
  | _ -> Alcotest.fail "raising task should be Lost");
  Array.iteri
    (fun i o ->
      if i <> 2 then
        match o with
        | Some (Pool.Done r) -> Alcotest.check json "survivor" (J.Int i) r
        | _ -> Alcotest.fail "non-raising task damaged")
    outcomes;
  (* the worker survived its exception: no respawn was needed *)
  Alcotest.(check int) "no respawn" 0 stats.Pool.respawned

(* ---- pool: worker lifecycle hooks ---- *)

let test_pool_epilogues_collected () =
  let inits = ref 0 in
  let epilogues = ref [] in
  let work payload = payload in
  let outcomes, _ =
    Pool.run ~jobs:2
      ~worker_init:(fun () -> incr inits)
      ~epilogue:(fun () -> J.Obj [ ("pid", J.Int (Unix.getpid ())) ])
      ~on_epilogue:(fun e -> epilogues := e :: !epilogues)
      ~work
      (Array.init 6 (fun i -> J.Int i))
  in
  Alcotest.(check int) "all tasks done" 6
    (Array.fold_left
       (fun n o -> match o with Some (Pool.Done _) -> n + 1 | _ -> n)
       0 outcomes);
  (* worker_init runs in the children, not here *)
  Alcotest.(check int) "parent inits untouched" 0 !inits;
  Alcotest.(check int) "one epilogue per surviving worker" 2
    (List.length !epilogues);
  List.iter
    (fun e ->
      match Option.bind (J.member "pid" e) J.to_int with
      | Some pid -> Alcotest.(check bool) "a child pid" true (pid <> Unix.getpid ())
      | None -> Alcotest.fail "malformed epilogue")
    !epilogues

let test_pool_should_stop_returns_promptly () =
  let work payload = payload in
  let outcomes, _ =
    Pool.run ~jobs:2
      ~should_stop:(fun () -> true)
      ~work
      (Array.init 4 (fun i -> J.Int i))
  in
  Alcotest.(check bool) "nothing decided after an immediate stop" true
    (Array.for_all (fun o -> o = None) outcomes)

let test_detect_jobs_positive () =
  Alcotest.(check bool) "at least one core" true (Pool.detect_jobs () >= 1)

let () =
  Alcotest.run "exec"
    [
      ( "ipc",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipc_roundtrip;
          Alcotest.test_case "large message" `Quick test_ipc_large_message;
          Alcotest.test_case "EOF at frame boundary" `Quick test_ipc_eof_at_boundary;
          Alcotest.test_case "torn frame" `Quick test_ipc_torn_frame;
          Alcotest.test_case "oversized frame" `Quick test_ipc_oversized_frame;
        ] );
      ( "pool",
        [
          Alcotest.test_case "outcomes in index order" `Quick
            test_pool_outcomes_in_index_order;
          Alcotest.test_case "steals from a straggler" `Quick
            test_pool_steals_from_straggler;
          Alcotest.test_case "killed worker costs one task" `Quick
            test_pool_killed_worker_costs_one_task;
          Alcotest.test_case "worker exception is Lost" `Quick
            test_pool_worker_exception_is_lost_not_fatal;
          Alcotest.test_case "epilogues collected" `Quick
            test_pool_epilogues_collected;
          Alcotest.test_case "should_stop returns promptly" `Quick
            test_pool_should_stop_returns_promptly;
          Alcotest.test_case "detect_jobs" `Quick test_detect_jobs_positive;
        ] );
    ]
