(* The exec subsystem: IPC framing over real pipes (roundtrip, messages
   larger than the pipe buffer, clean EOF vs torn frames) and the worker
   pool's contract — index-ordered outcomes, contiguous on_ordered replay,
   work-stealing when the queue dries up, fault isolation (a killed worker
   costs exactly its in-flight task and is respawned), worker epilogues,
   and prompt shutdown under should_stop. *)

module J = Util.Json
module Ipc = Exec.Ipc
module Pool = Exec.Pool

let contains = Astring_contains.contains

let json =
  Alcotest.testable
    (fun fmt j -> Format.pp_print_string fmt (J.to_string j))
    (fun a b -> J.to_string a = J.to_string b)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

(* ---- IPC framing ---- *)

let test_ipc_roundtrip () =
  with_pipe (fun r w ->
      let msgs =
        [
          J.Obj [ ("op", J.String "chunk"); ("tasks", J.List [ J.Int 1; J.Int 2 ]) ];
          J.Null;
          J.List [ J.Float 1.5; J.Bool true; J.String "x\"y\n" ];
        ]
      in
      List.iter (Ipc.write w) msgs;
      List.iter
        (fun m ->
          match Ipc.read r with
          | Ipc.Msg got -> Alcotest.check json "frame" m got
          | Ipc.Eof -> Alcotest.fail "unexpected EOF")
        msgs)

(* A frame bigger than any pipe buffer must cross intact — this is what a
   worker's result-with-span-snapshot payload looks like. The writer must
   be a separate process (a single process would deadlock on the full
   pipe). *)
let test_ipc_large_message () =
  with_pipe (fun r w ->
      let big = J.Obj [ ("blob", J.String (String.make 300_000 'x')) ] in
      match Unix.fork () with
      | 0 ->
          Unix.close r;
          (try Ipc.write w big with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close w;
          (match Ipc.read r with
          | Ipc.Msg got -> Alcotest.check json "large frame" big got
          | Ipc.Eof -> Alcotest.fail "unexpected EOF");
          ignore (Unix.waitpid [] pid))

let test_ipc_eof_at_boundary () =
  with_pipe (fun r w ->
      Ipc.write w (J.Int 7);
      Unix.close w;
      (match Ipc.read r with
      | Ipc.Msg got -> Alcotest.check json "last frame" (J.Int 7) got
      | Ipc.Eof -> Alcotest.fail "early EOF");
      match Ipc.read r with
      | Ipc.Eof -> ()
      | Ipc.Msg _ -> Alcotest.fail "expected EOF at frame boundary")

let test_ipc_torn_frame () =
  (* a header promising more bytes than ever arrive is a protocol error,
     not a silent truncation *)
  with_pipe (fun r w ->
      let header = Bytes.of_string "\x00\x00\x00\x10" (* 16-byte payload *) in
      ignore (Unix.write w header 0 4);
      ignore (Unix.write_substring w "{\"a\"" 0 4);
      Unix.close w;
      match Ipc.read r with
      | exception Ipc.Protocol_error m ->
          Alcotest.(check bool) "names the payload" true (contains m "payload")
      | Ipc.Msg _ | Ipc.Eof -> Alcotest.fail "torn frame not detected")

let test_ipc_oversized_frame () =
  with_pipe (fun r w ->
      (* header claiming 128 MiB, over the 64 MiB cap *)
      let header = Bytes.of_string "\x08\x00\x00\x00" in
      ignore (Unix.write w header 0 4);
      match Ipc.read r with
      | exception Ipc.Protocol_error m ->
          Alcotest.(check bool) "names the limit" true (contains m "limit")
      | Ipc.Msg _ | Ipc.Eof -> Alcotest.fail "oversized frame not rejected")

(* ---- IPC fault injection (the chaos writer) ---- *)

let test_ipc_write_faulty_torn () =
  with_pipe (fun r w ->
      Ipc.write_faulty Ipc.Torn w (J.Obj [ ("op", J.String "done") ]);
      Unix.close w;
      match Ipc.read r with
      | exception Ipc.Protocol_error m ->
          Alcotest.(check bool) "reads as a torn payload" true
            (contains m "payload")
      | _ -> Alcotest.fail "torn frame should be a protocol error")

let test_ipc_write_faulty_corrupt () =
  with_pipe (fun r w ->
      Ipc.write_faulty Ipc.Corrupt w (J.Obj [ ("op", J.String "done") ]);
      Unix.close w;
      match Ipc.read r with
      | exception Ipc.Protocol_error m ->
          Alcotest.(check bool) "reads as garbage" true
            (contains m "unparseable")
      | _ -> Alcotest.fail "corrupt frame should be a protocol error")

let test_ipc_write_faulty_delay_is_lossless () =
  with_pipe (fun r w ->
      let msg = J.Obj [ ("op", J.String "done"); ("i", J.Int 3) ] in
      let t0 = Unix.gettimeofday () in
      Ipc.write_faulty (Ipc.Delay 0.05) w msg;
      Alcotest.(check bool) "the delay actually happened" true
        (Unix.gettimeofday () -. t0 >= 0.045);
      match Ipc.read r with
      | Ipc.Msg got -> Alcotest.check json "frame intact" msg got
      | Ipc.Eof -> Alcotest.fail "unexpected EOF")

(* ---- pool: ordering ---- *)

let task_index payload = Option.value ~default:(-1) (J.to_int payload)

let test_pool_outcomes_in_index_order () =
  let n = 12 in
  let ordered = ref [] in
  let completions = ref 0 in
  let work payload =
    let i = task_index payload in
    (* stagger completions so they genuinely arrive out of index order *)
    if i mod 3 = 0 then Unix.sleepf 0.05;
    J.Int (i * 10)
  in
  let outcomes, stats =
    Pool.run ~jobs:4 ~work
      ~on_complete:(fun _ _ -> incr completions)
      ~on_ordered:(fun i _ -> ordered := i :: !ordered)
      (Array.init n (fun i -> J.Int i))
  in
  Alcotest.(check int) "every task completed once" n !completions;
  Alcotest.(check (list int))
    "on_ordered replays in task order"
    (List.init n (fun i -> i))
    (List.rev !ordered);
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Done r) -> Alcotest.check json "result" (J.Int (i * 10)) r
      | Some (Pool.Lost c) -> Alcotest.fail ("task lost: " ^ c)
      | Some (Pool.Timed_out _) -> Alcotest.fail "spurious timeout"
      | None -> Alcotest.fail "undecided task")
    outcomes;
  Alcotest.(check int) "no losses" 0 stats.Pool.tasks_lost;
  Alcotest.(check int) "initial fleet only" 4 stats.Pool.forked

(* ---- pool: work-stealing ---- *)

let test_pool_steals_from_straggler () =
  (* jobs=2, max_chunk=8, 12 tasks: the first chunks are 3 tasks each, and
     task 0 sleeps — so one worker finishes the whole tail while the other
     still sits on unstarted chunk-mates, which the parent must steal back. *)
  let work payload =
    let i = task_index payload in
    if i = 0 then Unix.sleepf 0.5;
    J.Int i
  in
  let outcomes, stats =
    Pool.run ~jobs:2 ~max_chunk:8 ~work (Array.init 12 (fun i -> J.Int i))
  in
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Done r) -> Alcotest.check json "result" (J.Int i) r
      | _ -> Alcotest.fail "task lost or undecided")
    outcomes;
  Alcotest.(check bool)
    ("at least one steal, got " ^ string_of_int stats.Pool.steals)
    true (stats.Pool.steals >= 1)

(* ---- pool: fault isolation ---- *)

let test_pool_killed_worker_costs_one_task () =
  let victim = 3 in
  let work payload =
    let i = task_index payload in
    if i = victim then Unix.kill (Unix.getpid ()) Sys.sigkill;
    (* keep the queue non-empty past the backoff delay so the respawn
       actually happens (an empty queue makes respawning pointless) *)
    Unix.sleepf 0.03;
    J.Int i
  in
  let outcomes, stats =
    Pool.run ~jobs:2 ~max_chunk:1 ~work (Array.init 8 (fun i -> J.Int i))
  in
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Lost cause) ->
          Alcotest.(check int) "only the victim is lost" victim i;
          Alcotest.(check bool) "cause names the signal" true
            (contains cause "SIGKILL")
      | Some (Pool.Done r) -> Alcotest.check json "survivor result" (J.Int i) r
      | Some (Pool.Timed_out _) -> Alcotest.fail "spurious timeout"
      | None -> Alcotest.fail "undecided task")
    outcomes;
  Alcotest.(check int) "exactly one task lost" 1 stats.Pool.tasks_lost;
  Alcotest.(check bool) "the dead worker was respawned" true
    (stats.Pool.respawned >= 1);
  Alcotest.(check int) "forked = fleet + respawns"
    (2 + stats.Pool.respawned) stats.Pool.forked

let test_pool_worker_exception_is_lost_not_fatal () =
  let work payload =
    let i = task_index payload in
    if i = 2 then failwith "boom";
    J.Int i
  in
  let outcomes, stats =
    Pool.run ~jobs:2 ~work (Array.init 6 (fun i -> J.Int i))
  in
  (match outcomes.(2) with
  | Some (Pool.Lost cause) ->
      Alcotest.(check bool) "cause carries the exception" true
        (contains cause "boom")
  | _ -> Alcotest.fail "raising task should be Lost");
  Array.iteri
    (fun i o ->
      if i <> 2 then
        match o with
        | Some (Pool.Done r) -> Alcotest.check json "survivor" (J.Int i) r
        | _ -> Alcotest.fail "non-raising task damaged")
    outcomes;
  (* the worker survived its exception: no respawn was needed *)
  Alcotest.(check int) "no respawn" 0 stats.Pool.respawned

(* ---- pool: worker lifecycle hooks ---- *)

let test_pool_epilogues_collected () =
  let inits = ref 0 in
  let epilogues = ref [] in
  let work payload = payload in
  let outcomes, _ =
    Pool.run ~jobs:2
      ~worker_init:(fun () -> incr inits)
      ~epilogue:(fun () -> J.Obj [ ("pid", J.Int (Unix.getpid ())) ])
      ~on_epilogue:(fun e -> epilogues := e :: !epilogues)
      ~work
      (Array.init 6 (fun i -> J.Int i))
  in
  Alcotest.(check int) "all tasks done" 6
    (Array.fold_left
       (fun n o -> match o with Some (Pool.Done _) -> n + 1 | _ -> n)
       0 outcomes);
  (* worker_init runs in the children, not here *)
  Alcotest.(check int) "parent inits untouched" 0 !inits;
  Alcotest.(check int) "one epilogue per surviving worker" 2
    (List.length !epilogues);
  List.iter
    (fun e ->
      match Option.bind (J.member "pid" e) J.to_int with
      | Some pid -> Alcotest.(check bool) "a child pid" true (pid <> Unix.getpid ())
      | None -> Alcotest.fail "malformed epilogue")
    !epilogues

let test_pool_should_stop_returns_promptly () =
  let work payload = payload in
  let outcomes, _ =
    Pool.run ~jobs:2
      ~should_stop:(fun () -> true)
      ~work
      (Array.init 4 (fun i -> J.Int i))
  in
  Alcotest.(check bool) "nothing decided after an immediate stop" true
    (Array.for_all (fun o -> o = None) outcomes)

let test_detect_jobs_positive () =
  Alcotest.(check bool) "at least one core" true (Pool.detect_jobs () >= 1)

(* ---- backoff ---- *)

module Backoff = Exec.Backoff
module Breaker = Exec.Breaker
module Chaos = Exec.Chaos

let test_backoff_ladder_and_reset () =
  (* jitter off: the ladder is exactly base * factor^k, capped *)
  let t =
    Backoff.create ~base_s:0.1 ~factor:2.0 ~max_s:0.5 ~jitter:0.0 ~seed:0 ()
  in
  Alcotest.(check (list (float 1e-9)))
    "exponential ladder, capped"
    [ 0.1; 0.2; 0.4; 0.5; 0.5 ]
    (List.init 5 (fun _ -> Backoff.next t));
  Backoff.reset t;
  Alcotest.(check (float 1e-9)) "reset restarts the ladder" 0.1 (Backoff.next t);
  Alcotest.(check int) "attempts counted across resets" 6 (Backoff.attempts t)

let test_backoff_same_seed_same_delays () =
  let seq seed =
    let t = Backoff.create ~seed () in
    List.init 8 (fun _ -> Backoff.next t)
  in
  Alcotest.(check (list (float 0.0))) "same seed, same jittered delays"
    (seq 42) (seq 42);
  Alcotest.(check bool) "different seed, different jitter" true
    (seq 42 <> seq 43)

(* ---- breaker ---- *)

let test_breaker_trips_and_resets () =
  let b = Breaker.create ~threshold:3 () in
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "below threshold" false (Breaker.tripped b);
  Breaker.record_success b;
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "a success resets the streak" false (Breaker.tripped b);
  Breaker.record_failure b;
  Alcotest.(check bool) "trips at threshold" true (Breaker.tripped b);
  Alcotest.(check int) "one closed->open transition" 1 (Breaker.trips b);
  Breaker.reset b;
  Alcotest.(check bool) "reset closes it" false (Breaker.tripped b)

(* ---- pool: supervision ---- *)

let test_pool_watchdog_reaps_stalled_task () =
  let victim = 1 in
  let work payload =
    let i = task_index payload in
    if i = victim then Unix.sleepf 30.0;
    J.Int i
  in
  let outcomes, stats =
    Pool.run ~jobs:2 ~max_chunk:1 ~task_deadline_s:0.5 ~work
      (Array.init 4 (fun i -> J.Int i))
  in
  (match outcomes.(victim) with
  | Some (Pool.Timed_out d) ->
      Alcotest.(check (float 1e-9)) "carries the configured deadline" 0.5 d
  | _ -> Alcotest.fail "stalled task should be Timed_out");
  Array.iteri
    (fun i o ->
      if i <> victim then
        match o with
        | Some (Pool.Done r) -> Alcotest.check json "survivor" (J.Int i) r
        | _ -> Alcotest.fail "non-stalled task damaged")
    outcomes;
  Alcotest.(check int) "one timeout" 1 stats.Pool.timeouts

let test_pool_watchdog_reaps_sigstopped_worker () =
  (* the hard case: a SIGSTOP'd worker makes no syscalls and holds its
     pipes open — only the parent-side SIGKILL can resolve it *)
  let chaos = Chaos.explicit [ (2, Chaos.Stall_self) ] in
  let work payload = J.Int (task_index payload) in
  let t0 = Unix.gettimeofday () in
  let outcomes, stats =
    Pool.run ~jobs:2 ~max_chunk:1 ~task_deadline_s:0.5 ~chaos ~work
      (Array.init 5 (fun i -> J.Int i))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match outcomes.(2) with
  | Some (Pool.Timed_out _) -> ()
  | _ -> Alcotest.fail "SIGSTOP-stalled task should be Timed_out");
  Alcotest.(check bool)
    (Printf.sprintf "reaped promptly (%.2fs), not hung" elapsed)
    true (elapsed < 5.0);
  Alcotest.(check int) "one timeout" 1 stats.Pool.timeouts;
  Array.iteri
    (fun i o ->
      if i <> 2 then
        match o with
        | Some (Pool.Done r) -> Alcotest.check json "survivor" (J.Int i) r
        | _ -> Alcotest.fail "non-stalled task damaged")
    outcomes

let test_pool_breaker_gives_up_early () =
  (* every dispatched task kills its worker: after [threshold] consecutive
     losses the pool must stop feeding the collapse and return early with
     the tail undecided, not drain it as Lost *)
  let work payload =
    let i = task_index payload in
    if i < 6 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    J.Int i
  in
  let breaker = Breaker.create ~threshold:2 () in
  let backoff = Backoff.create ~base_s:0.01 ~max_s:0.02 ~seed:0 () in
  let outcomes, stats =
    Pool.run ~jobs:2 ~max_chunk:1 ~breaker ~backoff ~work
      (Array.init 12 (fun i -> J.Int i))
  in
  (match stats.Pool.gave_up with
  | Some cause ->
      Alcotest.(check bool) "names the breaker" true (contains cause "breaker")
  | None -> Alcotest.fail "pool should give up once the breaker trips");
  Alcotest.(check bool) "breaker tripped" true (stats.Pool.breaker_trips >= 1);
  Alcotest.(check bool) "at least threshold losses" true
    (stats.Pool.tasks_lost >= 2);
  Alcotest.(check bool) "undecided work remains (not drained as Lost)" true
    (Array.exists (fun o -> o = None) outcomes)

(* ---- pool: chaos faults surface as the right outcomes ---- *)

let test_pool_chaos_lethal_faults_cost_their_task () =
  let chaos =
    Chaos.explicit
      [ (1, Chaos.Kill_self); (3, Chaos.Torn_result); (4, Chaos.Corrupt_result) ]
  in
  let work payload = J.Int (task_index payload * 2) in
  let backoff = Backoff.create ~base_s:0.01 ~max_s:0.02 ~seed:0 () in
  let outcomes, stats =
    Pool.run ~jobs:2 ~max_chunk:1 ~backoff ~chaos ~work
      (Array.init 6 (fun i -> J.Int i))
  in
  let lethal = [ 1; 3; 4 ] in
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Lost cause) ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d planned lethal" i)
            true (List.mem i lethal);
          (* kill reaps as a signal; torn/corrupt workers _exit 1 *)
          let expected = if i = 1 then "SIGKILL" else "exited with code 1" in
          Alcotest.(check bool)
            (Printf.sprintf "cause %S matches the fault" cause)
            true (contains cause expected)
      | Some (Pool.Done r) ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d planned survivor" i)
            true
            (not (List.mem i lethal));
          Alcotest.check json "survivor result" (J.Int (i * 2)) r
      | Some (Pool.Timed_out _) -> Alcotest.fail "no stall was planned"
      | None -> Alcotest.fail "undecided task")
    outcomes;
  Alcotest.(check int) "three losses" 3 stats.Pool.tasks_lost

let test_pool_chaos_delay_is_lossless () =
  let chaos = Chaos.explicit [ (0, Chaos.Delay_result 0.1) ] in
  let work payload = J.Int (task_index payload) in
  let outcomes, stats =
    Pool.run ~jobs:2 ~chaos ~work (Array.init 4 (fun i -> J.Int i))
  in
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Done r) -> Alcotest.check json "result" (J.Int i) r
      | _ -> Alcotest.fail "delay must not lose the task")
    outcomes;
  Alcotest.(check int) "no losses" 0 stats.Pool.tasks_lost

let () =
  Alcotest.run "exec"
    [
      ( "ipc",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipc_roundtrip;
          Alcotest.test_case "large message" `Quick test_ipc_large_message;
          Alcotest.test_case "EOF at frame boundary" `Quick test_ipc_eof_at_boundary;
          Alcotest.test_case "torn frame" `Quick test_ipc_torn_frame;
          Alcotest.test_case "oversized frame" `Quick test_ipc_oversized_frame;
          Alcotest.test_case "faulty writer: torn" `Quick
            test_ipc_write_faulty_torn;
          Alcotest.test_case "faulty writer: corrupt" `Quick
            test_ipc_write_faulty_corrupt;
          Alcotest.test_case "faulty writer: delay is lossless" `Quick
            test_ipc_write_faulty_delay_is_lossless;
        ] );
      ( "pool",
        [
          Alcotest.test_case "outcomes in index order" `Quick
            test_pool_outcomes_in_index_order;
          Alcotest.test_case "steals from a straggler" `Quick
            test_pool_steals_from_straggler;
          Alcotest.test_case "killed worker costs one task" `Quick
            test_pool_killed_worker_costs_one_task;
          Alcotest.test_case "worker exception is Lost" `Quick
            test_pool_worker_exception_is_lost_not_fatal;
          Alcotest.test_case "epilogues collected" `Quick
            test_pool_epilogues_collected;
          Alcotest.test_case "should_stop returns promptly" `Quick
            test_pool_should_stop_returns_promptly;
          Alcotest.test_case "detect_jobs" `Quick test_detect_jobs_positive;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "backoff ladder and reset" `Quick
            test_backoff_ladder_and_reset;
          Alcotest.test_case "backoff determinism" `Quick
            test_backoff_same_seed_same_delays;
          Alcotest.test_case "breaker trips and resets" `Quick
            test_breaker_trips_and_resets;
          Alcotest.test_case "watchdog reaps a stalled task" `Quick
            test_pool_watchdog_reaps_stalled_task;
          Alcotest.test_case "watchdog reaps a SIGSTOP'd worker" `Quick
            test_pool_watchdog_reaps_sigstopped_worker;
          Alcotest.test_case "breaker gives up early" `Quick
            test_pool_breaker_gives_up_early;
          Alcotest.test_case "chaos lethal faults cost one task each" `Quick
            test_pool_chaos_lethal_faults_cost_their_task;
          Alcotest.test_case "chaos delay is lossless" `Quick
            test_pool_chaos_delay_is_lossless;
        ] );
    ]
