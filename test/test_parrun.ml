(* Guarded parallel DOALL execution: conflict-detector edge cases, the
   byte-identity guarantee of the commit/rollback protocol, quarantine of
   unsound verdicts (hand-forged Proven_doall on a dependent loop), and
   convergence under injected shard faults. The interval algebra is unit
   tested here; the end-to-end invariants run real programs through
   Parrun.Guard. *)

module Conflict = Parrun.Conflict
module Quarantine = Parrun.Quarantine
module Runner = Parrun.Runner
module Guard = Parrun.Guard
module Machine = Interp.Machine

let contains = Astring_contains.contains

(* ---- conflict detector unit tests ---- *)

let test_normalize_coalesces () =
  Alcotest.(check (list (pair int int)))
    "overlapping + unsorted"
    [ (0, 8); (10, 12) ]
    (Conflict.normalize [ (4, 8); (0, 5); (10, 11); (11, 12) ]);
  Alcotest.(check (list (pair int int)))
    "empty and inverted dropped" []
    (Conflict.normalize [ (5, 5); (9, 3) ])

let test_of_sorted_addrs () =
  Alcotest.(check (list (pair int int)))
    "runs coalesce"
    [ (1, 4); (7, 8) ]
    (Conflict.of_sorted_addrs [ 1; 2; 3; 7 ]);
  Alcotest.(check int) "cardinal" 4
    (Conflict.cardinal (Conflict.of_sorted_addrs [ 1; 2; 3; 7 ]))

let test_overlap_adjacent_disjoint () =
  (* shard boundaries touch: [0,100) vs [100,200) share no word *)
  Alcotest.(check (option int))
    "adjacent half-open ranges are disjoint" None
    (Conflict.overlap [ (0, 100) ] [ (100, 200) ]);
  Alcotest.(check (option int))
    "one-word gap" None
    (Conflict.overlap [ (0, 10) ] [ (11, 20) ]);
  Alcotest.(check (option int))
    "first common word" (Some 104)
    (Conflict.overlap [ (0, 10); (100, 108) ] [ (104, 112) ])

let test_detect_write_write () =
  (* two "bases" that alias the same storage: the address ranges overlap
     even though each shard derived them from a different pointer *)
  let writes = [| [ (100, 108) ]; [ (104, 112) ] |] in
  let reads = [| []; [] |] in
  match Conflict.detect ~writes ~reads ~n:2 with
  | None -> Alcotest.fail "aliased write sets must conflict"
  | Some c ->
      Alcotest.(check string) "kind" "write/write" (Conflict.kind_name c.kind);
      Alcotest.(check int) "addr" 104 c.Conflict.addr;
      Alcotest.(check int) "writer" 0 c.Conflict.writer

let test_detect_read_write_directional () =
  (* later shard reads what an earlier shard wrote: its fork snapshot
     returned bytes serial execution would have overwritten — conflict *)
  (match
     Conflict.detect
       ~writes:[| [ (0, 4) ]; [] |]
       ~reads:[| []; [ (2, 3) ] |]
       ~n:2
   with
  | Some { kind = Conflict.Read_write; addr = 2; writer = 0; _ } -> ()
  | _ -> Alcotest.fail "flow (early-write/late-read) not detected");
  (* earlier shard reads what a later shard writes: anti-dependence — the
     snapshot gives the reader the pre-loop bytes, exactly what serial
     iteration order reads, so this must commit (forward-gather loops are
     genuinely DOALL) *)
  match
    Conflict.detect
      ~writes:[| []; [ (0, 4) ] |]
      ~reads:[| [ (2, 3) ]; [] |]
      ~n:2
  with
  | None -> ()
  | Some c ->
      Alcotest.failf "anti-dependence must not conflict, got %s"
        (Conflict.conflict_to_string c)

let test_detect_disjoint_commits () =
  let writes = [| [ (0, 50) ]; [ (50, 100) ]; [ (100, 150) ] |] in
  let reads = [| [ (200, 210) ]; [ (210, 220) ]; [ (220, 230) ] |] in
  Alcotest.(check bool)
    "disjoint shards do not conflict" true
    (Conflict.detect ~writes ~reads ~n:3 = None)

(* ---- quarantine persistence ---- *)

let test_quarantine_roundtrip () =
  let q = Quarantine.create () in
  let e =
    {
      Quarantine.fingerprint = "parrun:conflict@main:bb3:deadbeef";
      target = "t";
      fname = "main";
      lid = 0;
      header = 3;
      reason = "write/write at 42";
    }
  in
  Alcotest.(check bool) "first add" true (Quarantine.add q e);
  Alcotest.(check bool) "dup add" false (Quarantine.add q e);
  let path = Filename.temp_file "parrun-quarantine-" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Quarantine.save q path;
      let q' = Quarantine.load path in
      Alcotest.(check int) "size survives" 1 (Quarantine.size q');
      Alcotest.(check bool) "mem survives" true
        (Quarantine.mem q' e.Quarantine.fingerprint))

(* ---- end-to-end guarded runs ---- *)

(* A map loop (adjacent-but-disjoint writes across every shard boundary)
   feeding a sum reduction: both are genuine DOALL and must commit. *)
let map_reduce_src =
  {|
fn main() -> int {
  var a: int[] = new int[400];
  for (var i: int = 0; i < 400; i = i + 1) { a[i] = i * 3 + 1; }
  var s: int = 0;
  for (var i: int = 0; i < 400; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return 0;
}
|}

let aggressive ?chaos () =
  {
    Runner.default_knobs with
    Runner.jobs = 2;
    min_trip = 1;
    round_chunk = 8;
    chaos;
  }

let run_guard ?chaos ?quarantine ?repro_dir ~target src =
  match
    Guard.run ~knobs:(aggressive ?chaos ()) ?quarantine ?repro_dir
      ~predict:false ~target src
  with
  | Error f -> Alcotest.fail ("guard failed: " ^ f.Loopa.Driver.message)
  | Ok r -> r

let total f rows = List.fold_left (fun acc st -> acc + f st) 0 rows

let test_map_reduce_commits () =
  let r = run_guard ~target:"map_reduce" map_reduce_src in
  Alcotest.(check bool) "byte-identical" true r.Guard.identical;
  Alcotest.(check (list string)) "no diffs" [] r.Guard.diffs;
  let stats = Runner.loop_stats r.Guard.runner in
  Alcotest.(check int) "two eligible loops" 2 (List.length stats);
  let committed = total (fun st -> st.Runner.st_committed) stats in
  Alcotest.(check bool) "commits happened" true (committed >= 2);
  Alcotest.(check int) "no conflicts" 0
    (total (fun st -> st.Runner.st_conflicts) stats);
  Alcotest.(check int) "nothing quarantined" 0
    (Quarantine.size (Runner.quarantine r.Guard.runner));
  (* parallel output really is the serial output *)
  (match r.Guard.serial with
  | Guard.Finished o -> Alcotest.(check bool) "printed sum" true
      (contains o.Machine.output "239800")
  | Guard.Trapped _ -> Alcotest.fail "serial pass trapped")

(* Reduction with a multiplicative accumulator and an unknown trip (the
   bound comes through a call-opaque chain? no — keep it simple: bottom
   bound known, but iterate by while). While-shaped loops still have a
   header compare; what matters here is the reduction commits. *)
let reduction_src =
  {|
fn main() -> int {
  var a: int[] = new int[256];
  for (var i: int = 0; i < 256; i = i + 1) { a[i] = (i % 7) + 1; }
  var m: int = 0;
  for (var i: int = 0; i < 256; i = i + 1) {
    if (a[i] * i > m) { m = a[i] * i; }
  }
  var s: int = 0;
  for (var i: int = 0; i < 256; i = i + 1) { s = s + a[i] * a[i]; }
  print_int(m); print_int(s);
  return 0;
}
|}

let test_reduction_commits_not_conflicts () =
  let r = run_guard ~target:"reductions" reduction_src in
  Alcotest.(check bool) "byte-identical" true r.Guard.identical;
  let stats = Runner.loop_stats r.Guard.runner in
  Alcotest.(check int) "no conflicts" 0
    (total (fun st -> st.Runner.st_conflicts) stats);
  let committed = total (fun st -> st.Runner.st_committed) stats in
  Alcotest.(check bool) "sum reduction committed" true (committed >= 1)

(* Forward gather: iteration i reads a[i + 8], which a later iteration
   writes. A pure anti-dependence — the fork snapshot hands every shard
   the same pre-loop bytes serial iteration order reads, so the loop is
   genuinely DOALL and must commit, not conflict (the shard boundary
   always splits some (i, i+8) pair, so an over-eager detector that
   flagged early-read/late-write overlaps would quarantine this). *)
let gather_src =
  {|
fn main() -> int {
  var a: int[] = new int[136];
  for (var i: int = 0; i < 136; i = i + 1) { a[i] = i * 5 + 3; }
  for (var i: int = 0; i < 128; i = i + 1) { a[i] = a[i] + a[i + 8]; }
  var s: int = 0;
  for (var i: int = 0; i < 128; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return 0;
}
|}

let test_forward_gather_commits () =
  let r = run_guard ~target:"gather" gather_src in
  Alcotest.(check bool) "byte-identical" true r.Guard.identical;
  Alcotest.(check (list string)) "no diffs" [] r.Guard.diffs;
  let stats = Runner.loop_stats r.Guard.runner in
  let gather =
    List.filter
      (fun st -> st.Runner.st_sharded > 0 && st.Runner.st_committed > 0)
      stats
  in
  Alcotest.(check bool) "gather loop committed in shards" true
    (List.length gather >= 2);
  Alcotest.(check int) "anti-dependence is not a conflict" 0
    (total (fun st -> st.Runner.st_conflicts) stats);
  Alcotest.(check int) "nothing quarantined" 0
    (Quarantine.size (Runner.quarantine r.Guard.runner))

(* ---- hand-forged unsound verdict must be caught at runtime ---- *)

(* a[i+1] depends on a[i]: honest analysis proves the carried dependence;
   we overwrite the verdict with Proven_doall and let the guarded runtime
   discover the lie, roll back, quarantine, and stay byte-identical. *)
let dependent_src =
  {|
fn main() -> int {
  var a: int[] = new int[128];
  a[0] = 1;
  for (var i: int = 0; i < 127; i = i + 1) { a[i + 1] = a[i] + 1; }
  print_int(a[127]);
  return 0;
}
|}

let force_doall (ms : Loopa.Classify.module_static) =
  let forced = ref 0 in
  Hashtbl.iter
    (fun _ (fs : Loopa.Classify.func_static) ->
      Array.iteri
        (fun i (ls : Loopa.Classify.loop_static) ->
          if ls.Loopa.Classify.dep.Deptest.Analysis.verdict
             <> Deptest.Analysis.Proven_doall
          then begin
            incr forced;
            fs.Loopa.Classify.loops.(i) <-
              {
                ls with
                Loopa.Classify.dep =
                  {
                    ls.Loopa.Classify.dep with
                    Deptest.Analysis.verdict = Deptest.Analysis.Proven_doall;
                  };
              }
          end)
        fs.Loopa.Classify.loops)
    ms.Loopa.Classify.funcs;
  !forced

let compile_prepared src =
  match Frontend.compile src with
  | Error _ -> Alcotest.fail "compile failed"
  | Ok m -> Loopa.Driver.prepare ~optimize:false m

let test_forced_unsound_verdict_quarantines () =
  let ms = compile_prepared dependent_src in
  Alcotest.(check bool) "a dependent loop exists" true (force_doall ms > 0);
  let dir = Filename.temp_file "parrun-bundles-" "" in
  Sys.remove dir;
  let runner =
    Runner.create ~knobs:(aggressive ()) ~repro_dir:dir
      ~target:"forced_unsound" ~source:dependent_src ms
  in
  let serial = Machine.run_main (Machine.create ms.Loopa.Classify.modul) in
  let pm = Machine.create ms.Loopa.Classify.modul in
  Runner.install runner pm;
  let parallel = Machine.run_main pm in
  (* rollback made the lie invisible *)
  Alcotest.(check string) "output identical" serial.Machine.output
    parallel.Machine.output;
  Alcotest.(check int) "clock identical" serial.Machine.clock
    parallel.Machine.clock;
  Alcotest.(check bool) "printed chain tip" true
    (contains serial.Machine.output "128");
  (* ... but was detected, quarantined, and documented *)
  let conflicts = Runner.conflicts runner in
  Alcotest.(check bool) "conflict detected" true (conflicts <> []);
  let c = List.hd conflicts in
  Alcotest.(check bool) "fingerprint shape" true
    (contains c.Runner.cf_fingerprint "parrun:conflict@main:bb");
  Alcotest.(check int) "verdict quarantined" 1
    (Quarantine.size (Runner.quarantine runner));
  (match c.Runner.cf_bundle with
  | None -> Alcotest.fail "no repro bundle emitted"
  | Some path ->
      Alcotest.(check bool) "bundle exists" true (Sys.file_exists path);
      (match Repro.Bundle.load path with
      | Error e -> Alcotest.fail ("bundle unreadable: " ^ e)
      | Ok b ->
          Alcotest.(check string) "bundle fingerprint" c.Runner.cf_fingerprint
            b.Repro.Bundle.fingerprint;
          Alcotest.(check string) "bundle source" dependent_src
            b.Repro.Bundle.source));
  (* a second run under the loaded quarantine must not shard the loop *)
  let q = Runner.quarantine runner in
  let runner2 =
    Runner.create ~knobs:(aggressive ()) ~quarantine:q
      ~target:"forced_unsound" ~source:dependent_src ms
  in
  let pm2 = Machine.create ms.Loopa.Classify.modul in
  Runner.install runner2 pm2;
  let again = Machine.run_main pm2 in
  Alcotest.(check string) "quarantined run identical" serial.Machine.output
    again.Machine.output;
  Alcotest.(check bool) "no new conflicts" true (Runner.conflicts runner2 = [])

(* ---- shard-fault chaos: every fault converges to the serial answer ---- *)

let test_shard_faults_converge () =
  let chaos =
    Exec.Chaos.shard_explicit
      [
        ((0, 0), Exec.Chaos.Kill_self);
        ((1, 1), Exec.Chaos.Corrupt_result);
        ((2, 0), Exec.Chaos.Torn_result);
      ]
  in
  let r = run_guard ~chaos ~target:"chaos_shards" map_reduce_src in
  Alcotest.(check bool) "byte-identical under faults" true r.Guard.identical;
  let stats = Runner.loop_stats r.Guard.runner in
  Alcotest.(check bool) "faults observed" true
    (total (fun st -> st.Runner.st_shard_failures) stats > 0);
  Alcotest.(check bool) "rollbacks happened" true
    (total (fun st -> st.Runner.st_rollbacks) stats > 0);
  (* infrastructure faults indict the pool, not the verdict *)
  Alcotest.(check int) "no conflicts" 0
    (total (fun st -> st.Runner.st_conflicts) stats);
  Alcotest.(check int) "nothing quarantined" 0
    (Quarantine.size (Runner.quarantine r.Guard.runner))

let () =
  Alcotest.run "parrun"
    [
      ( "conflict",
        [
          Alcotest.test_case "normalize coalesces" `Quick
            test_normalize_coalesces;
          Alcotest.test_case "sorted addrs to ranges" `Quick
            test_of_sorted_addrs;
          Alcotest.test_case "adjacent-disjoint no overlap" `Quick
            test_overlap_adjacent_disjoint;
          Alcotest.test_case "aliased bases write/write" `Quick
            test_detect_write_write;
          Alcotest.test_case "read/write flow vs anti" `Quick
            test_detect_read_write_directional;
          Alcotest.test_case "disjoint shards commit" `Quick
            test_detect_disjoint_commits;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "save/load roundtrip, dup-free" `Quick
            test_quarantine_roundtrip;
        ] );
      ( "guarded",
        [
          Alcotest.test_case "map+reduce commits, byte-identical" `Quick
            test_map_reduce_commits;
          Alcotest.test_case "reductions commit, no conflicts" `Quick
            test_reduction_commits_not_conflicts;
          Alcotest.test_case "forward gather (anti-dep) commits" `Quick
            test_forward_gather_commits;
          Alcotest.test_case "forced unsound verdict quarantined" `Quick
            test_forced_unsound_verdict_quarantines;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "shard faults converge to serial" `Quick
            test_shard_faults_converge;
        ] );
    ]
