(* Telemetry invariants: the null sink records nothing and instrumentation
   does not perturb pipeline results (the "zero-cost when disabled"
   contract), spans close on every exit path including injected faults, and
   the exporters emit well-formed Chrome-trace JSON / Prometheus text /
   checkpoint snapshots. Telemetry state is process-wide, so every test
   starts by pinning it (enable/disable + reset) and ends disabled. *)

module T = Obs.Telemetry
module E = Obs.Export

let contains = Astring_contains.contains

let src =
  {|
fn main() -> int {
  var a: int[] = new int[64];
  var s: int = 0;
  for (var i: int = 0; i < 63; i = i + 1) {
    a[i] = i * 2;
    s = s + a[i];
  }
  print_int(s);
  return 0;
}
|}

let teardown () =
  T.disable ();
  T.set_clock None;
  T.reset ()

(* A deterministic clock: each read advances one millisecond. *)
let install_tick_clock () =
  let t = ref 0.0 in
  T.set_clock
    (Some
       (fun () ->
         t := !t +. 0.001;
         !t))

(* ---- disabled-cost invariant ---- *)

let test_null_sink_records_nothing () =
  teardown ();
  (* a full pipeline run plus direct hits on every primitive *)
  ignore (Loopa.Driver.analyze_source src);
  let c = T.counter "test.null.c" and h = T.histogram "test.null.h" in
  T.add c 41;
  T.incr c;
  T.observe h 3.5;
  T.span_end (T.span_begin "test.null.span");
  T.with_span "test.null.with" (fun () -> ());
  Alcotest.(check int) "no spans" 0 (List.length (T.spans ()));
  Alcotest.(check int) "no open spans" 0 (T.open_spans ());
  Alcotest.(check int) "counter untouched" 0 (T.value c);
  List.iter
    (fun (name, v) -> Alcotest.(check int) ("counter " ^ name) 0 v)
    (T.counters ());
  List.iter
    (fun (name, (s : T.hist_snapshot)) ->
      Alcotest.(check int) ("histogram " ^ name) 0 s.T.count)
    (T.histograms ())

let test_enabled_matches_disabled () =
  teardown ();
  let cfg = Loopa.Config.best_pdoall in
  let run () =
    let a = Loopa.Driver.analyze_source src in
    (Loopa.Driver.evaluate a cfg).Loopa.Evaluate.speedup
  in
  let off = run () in
  T.enable ();
  let on = run () in
  teardown ();
  (* same deterministic pipeline either way: recording must not change
     what gets computed *)
  Alcotest.(check (float 0.0)) "speedup identical" off on

(* ---- span recording through the pipeline ---- *)

let test_pipeline_spans_nest () =
  teardown ();
  T.enable ();
  install_tick_clock ();
  ignore (Loopa.Driver.analyze_source src);
  let spans = T.spans () in
  let find name = List.filter (fun (s : T.span) -> s.T.name = name) spans in
  Alcotest.(check int) "no open spans" 0 (T.open_spans ());
  Alcotest.(check bool) "analyze root" true
    (match find "analyze" with [ s ] -> s.T.depth = 0 && s.T.parent = -1 | _ -> false);
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " recorded") true (find stage <> []))
    [ "compile"; "parse"; "sema"; "lower"; "prepare"; "classify";
      "scev"; "deptest"; "profile.interp" ];
  (* every non-root starts within its parent on the injected clock *)
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : T.span) -> Hashtbl.replace by_id s.T.id s) spans;
  List.iter
    (fun (s : T.span) ->
      if s.T.parent >= 0 then begin
        let p = Hashtbl.find by_id s.T.parent in
        Alcotest.(check bool) "child inside parent" true
          (p.T.start_s <= s.T.start_s
          && s.T.start_s +. s.T.dur_s <= p.T.start_s +. p.T.dur_s +. 1e-9);
        Alcotest.(check int) "depth is parent+1" (p.T.depth + 1) s.T.depth
      end)
    spans;
  (* the machine's counters were published by the driver *)
  let v name = List.assoc name (T.counters ()) in
  Alcotest.(check int) "one run" 1 (v "interp.runs");
  Alcotest.(check bool) "instructions retired" true (v "interp.instructions" > 0);
  Alcotest.(check bool) "mem accesses seen" true (v "interp.mem.accesses" > 0);
  teardown ()

let test_with_span_closes_on_raise () =
  teardown ();
  T.enable ();
  (match T.with_span "t.raise" (fun () -> raise Exit) with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Alcotest.(check int) "no open spans" 0 (T.open_spans ());
  (match T.spans () with
  | [ s ] ->
      Alcotest.(check string) "name" "t.raise" s.T.name;
      Alcotest.(check (option string)) "outcome attr" (Some "raised")
        (List.assoc_opt "outcome" s.T.attrs)
  | ss -> Alcotest.failf "expected one span, got %d" (List.length ss));
  teardown ()

let test_span_closure_under_faults () =
  let ms = Loopa.Driver.prepare (Frontend.compile_exn src) in
  (* an injected trap: the failure is classified, every span unwinds, and
     the run's machine counters still get published *)
  teardown ();
  T.enable ();
  (match
     Loopa.Driver.profile_result ~faults:[ (50, Interp.Machine.Inject_div_by_zero) ] ms
   with
  | Error f ->
      Alcotest.(check bool) "trap fingerprint" true
        (contains f.Loopa.Driver.fingerprint "trap:")
  | Ok _ -> Alcotest.fail "expected injected trap");
  Alcotest.(check int) "no open spans after trap" 0 (T.open_spans ());
  let v name = List.assoc name (T.counters ()) in
  Alcotest.(check int) "trap counted" 1 (v "interp.traps");
  Alcotest.(check bool) "instructions published on trap path" true
    (v "interp.instructions" > 0);
  (* an injected budget stop: still a success (truncated), spans unwind *)
  teardown ();
  T.enable ();
  (match
     Loopa.Driver.profile_result ~faults:[ (50, Interp.Machine.Inject_fuel_out) ] ms
   with
  | Ok p -> Alcotest.(check bool) "truncated" true p.Loopa.Profile.truncated
  | Error f -> Alcotest.failf "unexpected failure %s" (Loopa.Driver.failure_to_string f));
  Alcotest.(check int) "no open spans after budget stop" 0 (T.open_spans ());
  Alcotest.(check int) "truncation counted" 1 (List.assoc "interp.truncations" (T.counters ()));
  teardown ()

(* ---- exporters ---- *)

let test_chrome_trace_shape () =
  teardown ();
  T.enable ();
  install_tick_clock ();
  let outer = T.span_begin "outer" in
  let inner = T.span_begin ~attrs:[ ("k", "v") ] "inner" in
  T.span_end inner;
  T.span_end outer;
  T.incr (T.counter "trace.c");
  let json =
    match Util.Json.of_string (E.chrome_trace_string ()) with
    | Ok j -> j
    | Error e -> Alcotest.failf "trace does not re-parse: %s" e
  in
  let events =
    match Option.bind (Util.Json.member "traceEvents" json) Util.Json.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check int) "two spans + one instant" 3 (List.length events);
  let field ev k = Util.Json.member k ev in
  let str ev k = Option.bind (field ev k) Util.Json.to_str in
  let num ev k = Option.bind (field ev k) Util.Json.to_float in
  let completes, instants =
    List.partition (fun ev -> str ev "ph" = Some "X") events
  in
  Alcotest.(check int) "one instant event" 1 (List.length instants);
  List.iter
    (fun ev ->
      Alcotest.(check bool) "ts present" true (num ev "ts" <> None);
      Alcotest.(check bool) "dur present" true (num ev "dur" <> None);
      Alcotest.(check (option int)) "pid" (Some 1)
        (Option.bind (field ev "pid") Util.Json.to_int))
    completes;
  let get name =
    List.find (fun ev -> str ev "name" = Some name) completes
  in
  let ts ev = Option.get (num ev "ts") and dur ev = Option.get (num ev "dur") in
  let o = get "outer" and i = get "inner" in
  Alcotest.(check bool) "inner nested by time containment" true
    (ts o <= ts i && ts i +. dur i <= ts o +. dur o);
  Alcotest.(check (option string)) "attr exported" (Some "v")
    (Option.bind (field i "args") (fun a -> Option.bind (Util.Json.member "k" a) Util.Json.to_str));
  let instant = List.hd instants in
  Alcotest.(check (option int)) "counter in instant args" (Some 1)
    (Option.bind (field instant "args")
       (fun a -> Option.bind (Util.Json.member "trace.c" a) Util.Json.to_int));
  teardown ()

let test_prometheus_shape () =
  teardown ();
  T.enable ();
  install_tick_clock ();
  let c = T.counter "prom.hits" and h = T.histogram "prom.lat" in
  T.add c 3;
  List.iter (T.observe h) [ 1.0; 2.0; 1000.0 ];
  T.with_span "prom-stage" (fun () -> ());
  let text = E.prometheus () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [
      "# TYPE loopa_prom_hits_total counter";
      "loopa_prom_hits_total 3";
      "# TYPE loopa_prom_lat histogram";
      "loopa_prom_lat_bucket{le=\"+Inf\"} 3";
      "loopa_prom_lat_sum 1003";
      "loopa_prom_lat_count 3";
      "# TYPE loopa_span_seconds summary";
      (* label values are verbatim (escaped), not sanitized like metric
         names: the dash survives *)
      "loopa_span_seconds_count{span=\"prom-stage\"} 1";
      "# TYPE loopa_build_info gauge";
    ];
  teardown ()

let test_prometheus_label_escaping () =
  teardown ();
  Alcotest.(check string) "backslash, quote, newline escaped"
    "a\\\\b\\\"c\\nd"
    (E.escape_label_value "a\\b\"c\nd");
  T.enable ();
  install_tick_clock ();
  T.with_span "evil\"span\nname\\x" (fun () -> ());
  let text = E.prometheus () in
  Alcotest.(check bool) "escaped span label emitted" true
    (contains text "{span=\"evil\\\"span\\nname\\\\x\"}");
  Alcotest.(check bool) "no raw newline inside a label value" false
    (List.exists
       (fun line -> contains line "{span=\"evil" && not (contains line "} "))
       (String.split_on_char '\n' text));
  teardown ()

let test_prometheus_build_info () =
  teardown ();
  let text = E.prometheus () in
  Alcotest.(check bool) "gauge present even with telemetry off" true
    (contains text "# TYPE loopa_build_info gauge");
  Alcotest.(check bool) "version label" true
    (contains text "loopa_build_info{version=\"");
  Alcotest.(check bool) "git_rev label" true (contains text "git_rev=\"");
  E.set_build_info [ ("version", "9.9.9"); ("git_rev", "de\"ad") ];
  let text = E.prometheus () in
  Alcotest.(check bool) "override + escaping" true
    (contains text "loopa_build_info{version=\"9.9.9\",git_rev=\"de\\\"ad\"} 1");
  E.set_build_info [ ("version", "1.0.0"); ("git_rev", "unknown") ];
  teardown ()

let test_snapshot_rides_checkpoint_line () =
  teardown ();
  T.enable ();
  install_tick_clock ();
  let before = T.mark () in
  T.with_span "task-stage" (fun () -> T.add (T.counter "task.c") 7);
  let spans, counters = T.since before in
  Alcotest.(check int) "one span since mark" 1 (List.length spans);
  Alcotest.(check (list (pair string int))) "one non-zero delta"
    [ ("task.c", 7) ] counters;
  let telemetry = E.snapshot_json ~spans ~counters in
  let r =
    {
      Campaign.Runner.target = "t0";
      status = Campaign.Runner.Completed [];
      attempts = 1;
      clock = 123;
      wall_s = 0.5;
    }
  in
  let line = Campaign.Runner.result_to_json ~telemetry r in
  (* the snapshot is an extra field; older readers must still decode it *)
  let tele =
    match Util.Json.member "telemetry" line with
    | Some t -> t
    | None -> Alcotest.fail "telemetry field missing"
  in
  Alcotest.(check (option int)) "span count in snapshot" (Some 1)
    (Option.bind (Util.Json.member "spans" tele) (fun s ->
         Option.bind (Util.Json.member "task-stage" s) (fun n ->
             Option.bind (Util.Json.member "n" n) Util.Json.to_int)));
  Alcotest.(check (option int)) "counter delta in snapshot" (Some 7)
    (Option.bind (Util.Json.member "counters" tele) (fun c ->
         Option.bind (Util.Json.member "task.c" c) Util.Json.to_int));
  (match Campaign.Runner.result_of_json line with
  | Ok r' ->
      Alcotest.(check string) "target survives" r.Campaign.Runner.target
        r'.Campaign.Runner.target;
      Alcotest.(check int) "clock survives" r.Campaign.Runner.clock
        r'.Campaign.Runner.clock
  | Error e -> Alcotest.failf "decode failed: %s" e);
  teardown ()

let test_heartbeat_line () =
  let hb =
    {
      Campaign.Runner.hb_done = 3;
      hb_total = 10;
      hb_elapsed_s = 2.4;
      hb_tasks_per_s = 1.25;
      hb_eta_s = 5.6;
      hb_counters =
        [ ("interp.instructions", 1234); ("classify.loops", 2); ("interp.runs", 1); ("deptest.unknown", 1) ];
      hb_timeouts = 0;
      hb_backoff_waits = 0;
      hb_breaker_trips = 0;
    }
  in
  let line = Campaign.Runner.heartbeat_line hb in
  Alcotest.(check bool) "progress fraction" true (contains line "[3/10]");
  Alcotest.(check bool) "rate" true (contains line "1.25 tasks/s");
  Alcotest.(check bool) "largest delta shown" true
    (contains line "interp.instructions +1234");
  (* only the three largest movements ride along *)
  Alcotest.(check bool) "fourth delta dropped" false (contains line "deptest.unknown");
  (* supervision stays out of the line while nothing went wrong *)
  Alcotest.(check bool) "quiet supervision omitted" false (contains line "timeouts");
  let line2 =
    Campaign.Runner.heartbeat_line
      { hb with Campaign.Runner.hb_timeouts = 2; hb_breaker_trips = 1 }
  in
  Alcotest.(check bool) "timeouts surface" true (contains line2 "timeouts 2");
  Alcotest.(check bool) "breaker trips surface" true (contains line2 "breaker 1")

(* ---- absorption: merging forked-worker telemetry ---- *)

let test_absorb_reidentifies_spans () =
  teardown ();
  T.enable ();
  install_tick_clock ();
  (* a local span first, so absorbed ids must shift past it *)
  T.with_span "parent.local" (fun () -> ());
  let worker_spans =
    [
      {
        T.id = 5;
        parent = -1;
        depth = 0;
        name = "w.root";
        start_s = 0.1;
        dur_s = 0.2;
        attrs = [];
      };
      {
        T.id = 6;
        parent = 5;
        depth = 1;
        name = "w.child";
        start_s = 0.15;
        dur_s = 0.05;
        attrs = [ ("k", "v") ];
      };
      {
        T.id = 7;
        parent = 3;
        (* its parent was not shipped: must become a root *)
        depth = 1;
        name = "w.orphan";
        start_s = 0.3;
        dur_s = 0.01;
        attrs = [];
      };
    ]
  in
  T.absorb ~spans:worker_spans ~counters:[ ("w.ctr", 4); ("w.zero", 0) ];
  let spans = T.spans () in
  Alcotest.(check int) "local + three absorbed" 4 (List.length spans);
  let ids = List.map (fun (s : T.span) -> s.T.id) spans in
  Alcotest.(check bool) "ids unique" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  let find name = List.find (fun (s : T.span) -> s.T.name = name) spans in
  let root = find "w.root" and child = find "w.child" and orphan = find "w.orphan" in
  Alcotest.(check int) "in-batch parent link preserved" root.T.id child.T.parent;
  Alcotest.(check int) "out-of-batch parent cut to root" (-1) orphan.T.parent;
  Alcotest.(check (option string)) "attrs survive" (Some "v")
    (List.assoc_opt "k" child.T.attrs);
  Alcotest.(check int) "counter delta added" 4 (T.value (T.counter "w.ctr"));
  (* a span recorded after absorption must not collide with absorbed ids *)
  T.with_span "parent.after" (fun () -> ());
  let ids' = List.map (fun (s : T.span) -> s.T.id) (T.spans ()) in
  Alcotest.(check bool) "still unique after more recording" true
    (List.length (List.sort_uniq compare ids') = List.length ids');
  teardown ()

let test_absorb_disabled_is_noop () =
  teardown ();
  T.absorb
    ~spans:
      [
        {
          T.id = 0;
          parent = -1;
          depth = 0;
          name = "w";
          start_s = 0.0;
          dur_s = 1.0;
          attrs = [];
        };
      ]
    ~counters:[ ("w.ctr", 9) ];
  Alcotest.(check int) "no spans" 0 (List.length (T.spans ()));
  Alcotest.(check int) "counter untouched" 0 (T.value (T.counter "w.ctr"))

let test_histogram_wire_merge () =
  teardown ();
  T.enable ();
  (* "worker": observe, snapshot the wire payload, then start over as the
     "parent" with different observations and merge the worker's in *)
  let h = T.histogram "t.merge" in
  T.observe h 2.0;
  T.observe h 8.0;
  let wire = T.wire_histograms () in
  T.reset ();
  T.observe h 1.0;
  T.absorb_histograms wire;
  (match List.assoc_opt "t.merge" (T.histograms ()) with
  | Some s ->
      Alcotest.(check int) "counts add" 3 s.T.count;
      Alcotest.(check (float 1e-9)) "sums add" 11.0 s.T.sum;
      Alcotest.(check (float 1e-9)) "min widens" 1.0 s.T.minimum;
      Alcotest.(check (float 1e-9)) "max widens" 8.0 s.T.maximum;
      (* cumulative buckets: everything <= 8 *)
      Alcotest.(check bool) "buckets add" true
        (List.exists (fun (le, c) -> le = 8.0 && c = 3) s.T.buckets)
  | None -> Alcotest.fail "histogram vanished");
  (* exporters must render the merged registry without raising *)
  let prom = E.prometheus () in
  Alcotest.(check bool) "merged histogram exported" true
    (contains prom "t_merge");
  teardown ()

let test_span_json_roundtrip () =
  let s =
    {
      T.id = 12;
      parent = 3;
      depth = 2;
      name = "campaign.task";
      start_s = 1.5;
      dur_s = 0.25;
      attrs = [ ("target", "164_gzip") ];
    }
  in
  match E.span_of_json (E.span_to_json s) with
  | Some s' ->
      Alcotest.(check int) "id" s.T.id s'.T.id;
      Alcotest.(check int) "parent" s.T.parent s'.T.parent;
      Alcotest.(check int) "depth" s.T.depth s'.T.depth;
      Alcotest.(check string) "name" s.T.name s'.T.name;
      Alcotest.(check (float 1e-9)) "start" s.T.start_s s'.T.start_s;
      Alcotest.(check (float 1e-9)) "dur" s.T.dur_s s'.T.dur_s;
      Alcotest.(check (option string)) "attr" (Some "164_gzip")
        (List.assoc_opt "target" s'.T.attrs)
  | None -> Alcotest.fail "span did not roundtrip"

let () =
  Alcotest.run "obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "null sink records nothing" `Quick
            test_null_sink_records_nothing;
          Alcotest.test_case "results identical on/off" `Quick
            test_enabled_matches_disabled;
        ] );
      ( "spans",
        [
          Alcotest.test_case "pipeline spans nest" `Quick test_pipeline_spans_nest;
          Alcotest.test_case "with_span closes on raise" `Quick
            test_with_span_closes_on_raise;
          Alcotest.test_case "closure under injected faults" `Quick
            test_span_closure_under_faults;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
          Alcotest.test_case "prometheus shape" `Quick test_prometheus_shape;
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prometheus_label_escaping;
          Alcotest.test_case "prometheus build info" `Quick
            test_prometheus_build_info;
          Alcotest.test_case "snapshot in checkpoint line" `Quick
            test_snapshot_rides_checkpoint_line;
          Alcotest.test_case "heartbeat line" `Quick test_heartbeat_line;
        ] );
      ( "absorb",
        [
          Alcotest.test_case "spans re-identified" `Quick
            test_absorb_reidentifies_spans;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_absorb_disabled_is_noop;
          Alcotest.test_case "histogram wire merge" `Quick
            test_histogram_wire_merge;
          Alcotest.test_case "span json roundtrip" `Quick
            test_span_json_roundtrip;
        ] );
    ]
