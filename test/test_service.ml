(* The analysis-as-a-service layer: content-addressed cache semantics
   (hit/miss/evict, knob-fingerprint sensitivity, corruption tolerance,
   atomic concurrent writers), the daemon/client round trip (byte
   identity against the local renderer, warm-cache second submission,
   graceful SIGTERM), remote TCP workers driving a campaign to the same
   results as a serial run, and chaos link faults (sever, stall). *)

module J = Util.Json
module Cache = Service.Cache
module Keys = Service.Keys
module Runner = Campaign.Runner

let contains = Astring_contains.contains
let quiet _ = ()

let good_src =
  {|
fn main() -> int {
  var a: int[] = new int[64];
  for (var i: int = 0; i < 64; i = i + 1) { a[i] = i * 3; }
  var s: int = 0;
  for (var i: int = 0; i < 64; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return 0;
}
|}

let other_src =
  {|
fn main() -> int {
  var s: int = 0;
  for (var i: int = 0; i < 32; i = i + 1) { s = s + i; }
  print_int(s);
  return 0;
}
|}

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "svc-test-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* ---- cache semantics ---- *)

let test_cache_hit_miss () =
  with_tmp_dir (fun dir ->
      let c = Cache.open_dir dir in
      let k = Cache.key ~source:good_src ~fingerprint:"fp|v1" in
      Alcotest.(check (option reject)) "cold miss" None (Cache.find c k);
      Cache.store c k (J.String "payload");
      (match Cache.find c k with
      | Some (J.String "payload") -> ()
      | _ -> Alcotest.fail "expected stored payload back");
      let hits, misses, _ = Cache.stats c in
      Alcotest.(check int) "one hit" 1 hits;
      Alcotest.(check int) "one miss" 1 misses;
      (* a second handle on the same directory sees the entry *)
      let c2 = Cache.open_dir dir in
      match Cache.find c2 k with
      | Some (J.String "payload") -> ()
      | _ -> Alcotest.fail "expected hit through a fresh handle")

let test_cache_fingerprint_sensitivity () =
  let fp1 = Keys.analyze ~config:"reduc1-dep1-fn2 HELIX" ~fuel:1000 ~loops:8 ~optimize:false in
  let fp2 = Keys.analyze ~config:"reduc1-dep1-fn2 HELIX" ~fuel:2000 ~loops:8 ~optimize:false in
  let fp3 = Keys.analyze ~config:"reduc1-dep1-fn2 HELIX" ~fuel:1000 ~loops:8 ~optimize:true in
  let k source fp = Cache.key ~source ~fingerprint:fp in
  Alcotest.(check bool) "fuel changes key" true (k good_src fp1 <> k good_src fp2);
  Alcotest.(check bool) "optimize changes key" true (k good_src fp1 <> k good_src fp3);
  Alcotest.(check bool) "source changes key" true (k good_src fp1 <> k other_src fp1);
  (* the code revision is part of the key *)
  Unix.putenv "LOOPA_GIT_REV" "rev-a";
  let ka = k good_src fp1 in
  Unix.putenv "LOOPA_GIT_REV" "rev-b";
  let kb = k good_src fp1 in
  Unix.putenv "LOOPA_GIT_REV" "";
  Alcotest.(check bool) "revision changes key" true (ka <> kb);
  with_tmp_dir (fun dir ->
      let c = Cache.open_dir dir in
      Cache.store c (k good_src fp1) (J.String "v1");
      Alcotest.(check (option reject))
        "different knobs miss" None
        (Cache.find c (k good_src fp2)))

let test_cache_eviction () =
  with_tmp_dir (fun dir ->
      (* entries are a few hundred bytes; a 1 KiB cap forces eviction *)
      let c = Cache.open_dir ~max_bytes:1024 dir in
      let pad = String.make 400 'x' in
      let key i = Cache.key ~source:(string_of_int i) ~fingerprint:"evict" in
      Cache.store c (key 1) (J.String pad);
      Cache.store c (key 2) (J.String pad);
      Cache.store c (key 3) (J.String pad);
      let _, _, evictions = Cache.stats c in
      Alcotest.(check bool) "evicted something" true (evictions > 0);
      Alcotest.(check bool) "under the cap" true (Cache.size_bytes c <= 1024);
      (* the just-written entry survives its own eviction pass *)
      (match Cache.find c (key 3) with
      | Some (J.String _) -> ()
      | _ -> Alcotest.fail "newest entry must survive");
      (* the LRU victim is gone *)
      Alcotest.(check (option reject)) "oldest evicted" None (Cache.find c (key 1)))

let test_cache_corrupt_entry_is_a_miss () =
  with_tmp_dir (fun dir ->
      let c = Cache.open_dir dir in
      let k = Cache.key ~source:good_src ~fingerprint:"corrupt" in
      Cache.store c k (J.String "good");
      (* smash the entry on disk *)
      let path = Filename.concat dir (k ^ ".json") in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "{ not json");
      let c2 = Cache.open_dir dir in
      Alcotest.(check (option reject)) "corrupt is a miss" None (Cache.find c2 k);
      Alcotest.(check bool) "poisoned file dropped" false (Sys.file_exists path);
      (* an entry that parses but identifies as another key is foreign *)
      let k2 = Cache.key ~source:other_src ~fingerprint:"corrupt" in
      let path2 = Filename.concat dir (k2 ^ ".json") in
      Out_channel.with_open_text path2 (fun oc ->
          Out_channel.output_string oc
            (J.to_string
               (J.Obj [ ("key", J.String "0000000000000000"); ("value", J.Null) ])));
      let c3 = Cache.open_dir dir in
      Alcotest.(check (option reject)) "foreign is a miss" None (Cache.find c3 k2))

let test_cache_concurrent_writers () =
  with_tmp_dir (fun dir ->
      let k = Cache.key ~source:good_src ~fingerprint:"race" in
      let big tag = J.String (tag ^ String.make 65536 (String.get tag 0)) in
      let writer tag =
        match Unix.fork () with
        | 0 ->
            (try
               let c = Cache.open_dir dir in
               for _ = 1 to 20 do
                 Cache.store c k (big tag)
               done
             with _ -> Unix._exit 1);
            Unix._exit 0
        | pid -> pid
      in
      let a = writer "a" and b = writer "b" in
      let reap pid =
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ -> Alcotest.fail "writer child failed"
      in
      reap a;
      reap b;
      (* whatever rename won, the entry is whole: one of the two values,
         never an interleaving *)
      let c = Cache.open_dir dir in
      match Cache.find c k with
      | Some (J.String s) ->
          Alcotest.(check bool) "intact value" true
            (s = "a" ^ String.make 65536 'a' || s = "b" ^ String.make 65536 'b')
      | _ -> Alcotest.fail "expected an intact entry after the race")

(* ---- daemon round trip ---- *)

let wait_for_socket path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec loop () =
    if Sys.file_exists path then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "daemon socket never appeared"
    else begin
      Unix.sleepf 0.05;
      loop ()
    end
  in
  loop ()

let normalized_lines path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line ->
         match J.of_string line with
         | Ok (J.Obj fields) ->
             J.to_string
               (J.Obj
                  (List.filter
                     (fun (k, _) -> k <> "wall_s" && k <> "telemetry")
                     fields))
         | _ -> line)

let test_daemon_round_trip () =
  with_tmp_dir (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      let cache_dir = Filename.concat dir "cache" in
      let pid =
        match Unix.fork () with
        | 0 ->
            (try Service.Daemon.serve ~socket ~cache_dir ~log:quiet ()
             with _ -> Unix._exit 1);
            Unix._exit 0
        | pid -> pid
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          wait_for_socket socket;
          (* ping *)
          (match Service.Client.submit ~socket Service.Client.ping_request with
          | Ok _ -> ()
          | Error (m, _) -> Alcotest.failf "ping failed: %s" m);
          (* analyze: bytes must equal the local renderer's *)
          let fuel = 1_000_000 in
          let config = "reduc1-dep1-fn2 HELIX" in
          let req =
            Service.Client.analyze_request ~source:good_src ~config ~fuel
              ~loops:8 ~optimize:false
          in
          let expected =
            Service.Render.report ~show_loops:8
              (Loopa.Driver.evaluate
                 (Loopa.Driver.analyze_source ~fuel ~optimize:false good_src)
                 (Loopa.Config.of_string config))
          in
          let text_of frame =
            Option.value ~default:""
              (Option.bind (J.member "text" frame) J.to_str)
          in
          let cached_of frame =
            match J.member "cached" frame with Some (J.Bool b) -> b | _ -> false
          in
          (match Service.Client.submit ~socket req with
          | Ok frame ->
              Alcotest.(check string) "analyze bytes" expected (text_of frame);
              Alcotest.(check bool) "cold" false (cached_of frame)
          | Error (m, _) -> Alcotest.failf "analyze failed: %s" m);
          (match Service.Client.submit ~socket req with
          | Ok frame ->
              Alcotest.(check string) "warm bytes" expected (text_of frame);
              Alcotest.(check bool) "warm hit" true (cached_of frame)
          | Error (m, _) -> Alcotest.failf "warm analyze failed: %s" m);
          (* campaign: checkpoint must normalize to a local serial run's *)
          let named = [ ("good", good_src); ("other", other_src) ] in
          let req =
            Service.Client.campaign_request ~targets:named ~jobs:1 ~fuel
              ~retries:1 ()
          in
          let progress = ref 0 in
          let daemon_ckpt =
            match
              Service.Client.submit ~socket ~on_frame:(fun _ -> incr progress) req
            with
            | Ok frame ->
                Option.value ~default:""
                  (Option.bind (J.member "checkpoint" frame) J.to_str)
            | Error (m, _) -> Alcotest.failf "campaign failed: %s" m
          in
          Alcotest.(check bool) "progress streamed" true (!progress > 0);
          let budgets = { Runner.default_budgets with Runner.fuel; retries = 1 } in
          let local_ckpt = Filename.concat dir "local.ckpt" in
          ignore (Runner.run ~budgets ~checkpoint:local_ckpt ~log:quiet named);
          let daemon_path = Filename.concat dir "daemon.ckpt" in
          Out_channel.with_open_text daemon_path (fun oc ->
              Out_channel.output_string oc daemon_ckpt);
          Alcotest.(check (list string))
            "normalized checkpoints identical" (normalized_lines local_ckpt)
            (normalized_lines daemon_path);
          (* second submission: every target served from the cache *)
          (match Service.Client.submit ~socket req with
          | Ok frame ->
              let cached =
                Option.value ~default:(-1)
                  (Option.bind (J.member "cached" frame) J.to_int)
              in
              Alcotest.(check int) "100% cache hit-rate" 2 cached
          | Error (m, _) -> Alcotest.failf "warm campaign failed: %s" m);
          (* graceful SIGTERM: clean exit *)
          Unix.kill pid Sys.sigterm;
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
          | _ -> Alcotest.fail "daemon killed by signal"))

(* ---- remote TCP workers ---- *)

(* Fork a worker process that dials the coordinator and serves until the
   pool tells it to quit. *)
let spawn_worker port =
  match Unix.fork () with
  | 0 ->
      (try Service.Worker.run ~host:"127.0.0.1" ~port with _ -> Unix._exit 1);
      Unix._exit 0
  | pid -> pid

let with_remote f =
  let lfd = Exec.Remote.listen ~host:"127.0.0.1" ~port:0 in
  let port = Exec.Remote.bound_port lfd in
  let wpid = spawn_worker port in
  let fd =
    Fun.protect
      ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
      (fun () -> Exec.Remote.accept_worker ~timeout_s:10.0 lfd)
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.kill wpid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] wpid) with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let status_sig (r : Runner.result) =
  (r.Runner.target, Runner.status_to_string r.Runner.status)

let test_remote_campaign_matches_serial () =
  let named = [ ("good", good_src); ("other", other_src) ] in
  let budgets = { Runner.default_budgets with Runner.fuel = 1_000_000 } in
  let serial = Runner.run ~budgets ~log:quiet named in
  let remote =
    with_remote (fun fd ->
        Runner.run ~budgets ~log:quiet ~executor:(Runner.Forked 1) ~remotes:[ fd ]
          named)
  in
  Alcotest.(check (list (pair string string)))
    "statuses match serial"
    (List.map status_sig serial.Runner.results)
    (List.map status_sig remote.Runner.results);
  Alcotest.(check int) "all completed" 2 remote.Runner.n_completed

let test_remote_link_sever () =
  let named = [ ("good", good_src); ("other", other_src) ] in
  let budgets = { Runner.default_budgets with Runner.fuel = 1_000_000 } in
  let chaos = Exec.Chaos.explicit ~link_faults:[ (0, Exec.Chaos.Sever) ] [] in
  let summary =
    with_remote (fun fd ->
        (* zero local workers: every task must go over the (sabotaged) link *)
        Runner.run ~budgets ~log:quiet ~executor:(Runner.Forked 0)
          ~remotes:[ fd ] ~chaos named)
  in
  (match (List.hd summary.Runner.results).Runner.status with
  | Runner.Errored (Runner.Worker_lost cause) ->
      Alcotest.(check string) "sever cause" Exec.Chaos.severed_link_cause cause
  | st -> Alcotest.failf "expected worker-lost, got %s" (Runner.status_to_string st));
  (* the second task still finishes — degraded serial completion *)
  Alcotest.(check int) "other task completed" 1 summary.Runner.n_completed

let test_remote_link_stall () =
  let named = [ ("good", good_src); ("other", other_src) ] in
  let budgets =
    { Runner.default_budgets with Runner.fuel = 1_000_000; watchdog_s = Some 1.0 }
  in
  let chaos = Exec.Chaos.explicit ~link_faults:[ (0, Exec.Chaos.Stall) ] [] in
  let summary =
    with_remote (fun fd ->
        Runner.run ~budgets ~log:quiet ~executor:(Runner.Forked 0)
          ~remotes:[ fd ] ~chaos named)
  in
  (match (List.hd summary.Runner.results).Runner.status with
  | Runner.Errored (Runner.Task_timeout cause) ->
      Alcotest.(check bool) "timeout names the deadline" true
        (contains cause "deadline" || contains cause "timeout" || cause <> "")
  | st ->
      Alcotest.failf "expected task-timeout, got %s" (Runner.status_to_string st));
  Alcotest.(check int) "other task completed" 1 summary.Runner.n_completed

(* ---- renderer ---- *)

let test_render_campaign_summary_notes () =
  let mk n_resumed n_cached =
    {
      Runner.results = [];
      n_completed = 0;
      n_truncated = 0;
      n_errored = 0;
      n_resumed;
      n_cached;
      n_degraded = 0;
      geomeans = [];
      failures = [];
    }
  in
  let s = Service.Render.campaign_summary (mk 0 0) in
  Alcotest.(check bool) "no notes" false (contains s "(");
  let s = Service.Render.campaign_summary (mk 2 0) in
  Alcotest.(check bool) "resumed note" true (contains s "(2 resumed from checkpoint)");
  let s = Service.Render.campaign_summary (mk 1 3) in
  Alcotest.(check bool) "both notes" true
    (contains s "(1 resumed from checkpoint; 3 served from cache)")

let () =
  Alcotest.run "service"
    [
      ( "cache",
        [
          Alcotest.test_case "hit / miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_cache_fingerprint_sensitivity;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction;
          Alcotest.test_case "corrupt entry is a miss" `Quick
            test_cache_corrupt_entry_is_a_miss;
          Alcotest.test_case "concurrent writers" `Quick
            test_cache_concurrent_writers;
        ] );
      ( "daemon",
        [ Alcotest.test_case "round trip + warm + SIGTERM" `Quick test_daemon_round_trip ] );
      ( "remote",
        [
          Alcotest.test_case "campaign matches serial" `Quick
            test_remote_campaign_matches_serial;
          Alcotest.test_case "chaos: link sever" `Quick test_remote_link_sever;
          Alcotest.test_case "chaos: link stall" `Quick test_remote_link_stall;
        ] );
      ( "render",
        [
          Alcotest.test_case "summary notes" `Quick
            test_render_campaign_summary_notes;
        ] );
    ]
