(* Optimization passes: constant folding (incl. branch folding and algebraic
   identities), DCE, CFG simplification — unit behaviour plus the decisive
   property that the pipeline preserves semantics on every suite benchmark. *)

let compile src = Frontend.compile_exn src

let run_module m = Interp.Machine.run_main (Interp.Machine.create m)

let optimized_clock src =
  let m = compile src in
  Opt.Pipeline.run_module m;
  let out = run_module m in
  (out.Interp.Machine.clock, String.trim out.Interp.Machine.output)

let plain_clock src =
  let out = run_module (compile src) in
  (out.Interp.Machine.clock, String.trim out.Interp.Machine.output)

let test_constfold_arithmetic () =
  let src = "fn main() -> int { print_int(2 + 3 * 4 - 1); return 0; }" in
  let c0, o0 = plain_clock src in
  let c1, o1 = optimized_clock src in
  Alcotest.(check string) "same output" o0 o1;
  Alcotest.(check string) "folded to a constant" "13" o1;
  Alcotest.(check bool)
    (Printf.sprintf "fewer instructions (%d -> %d)" c0 c1)
    true (c1 < c0)

let test_constfold_identities () =
  let src =
    {|
fn main() -> int {
  var x: int = 7;
  print_int(((x + 0) * 1 | 0) ^ 0);
  return 0;
}
|}
  in
  let c0, o0 = plain_clock src in
  let c1, o1 = optimized_clock src in
  Alcotest.(check string) "same output" o0 o1;
  Alcotest.(check bool) "identities removed" true (c1 < c0)

let test_branch_folding () =
  let src =
    {|
fn main() -> int {
  if (1 < 2) { print_int(10); } else { print_int(20); }
  return 0;
}
|}
  in
  let m = compile src in
  Opt.Pipeline.run_module m;
  let fn = Option.get (Ir.Func.find_func m "main") in
  let has_cond_br =
    Ir.Func.fold_instrs
      (fun acc i ->
        acc || match i.Ir.Instr.kind with Ir.Instr.Cond_br _ -> true | _ -> false)
      false fn
  in
  Alcotest.(check bool) "conditional branch folded away" false has_cond_br;
  Alcotest.(check string) "output preserved" "10"
    (String.trim (run_module m).Interp.Machine.output)

let test_div_by_zero_not_folded () =
  (* folding must not erase the trap *)
  let src = "fn main() -> int { return 1 / 0; }" in
  let m = compile src in
  Opt.Pipeline.run_module m;
  match run_module m with
  | _ -> Alcotest.fail "expected division trap to survive optimization"
  | exception Interp.Rvalue.Trap (Interp.Rvalue.Div_by_zero, msg) ->
      Alcotest.(check bool) "still traps" true
        (Astring_contains.contains msg "division")

let test_dce_removes_dead_chain () =
  let src =
    {|
fn main() -> int {
  var dead1: int = 40 * 40;
  var dead2: int = dead1 + dead1;   // feeds only dead code
  var dead3: int = dead2 * 3;
  print_int(5);
  return 0;
}
|}
  in
  let m = compile src in
  Opt.Constfold.run_module m;
  let removed = Opt.Dce.run_module m in
  Alcotest.(check bool) (Printf.sprintf "removed %d dead instrs" removed) true (removed >= 1);
  Alcotest.(check string) "output preserved" "5"
    (String.trim (run_module m).Interp.Machine.output)

let test_dce_keeps_effects () =
  let src =
    {|
global g: int = 0;
fn bump() -> int { g = g + 1; return g; }
fn main() -> int {
  var unused: int = bump();   // call must survive: it has effects
  print_int(g);
  return 0;
}
|}
  in
  let m = compile src in
  ignore (Opt.Dce.run_module m);
  Alcotest.(check string) "side effect kept" "1"
    (String.trim (run_module m).Interp.Machine.output)

let test_simplify_cfg_merges () =
  (* after branch folding, the straight-line chain should collapse *)
  let src =
    {|
fn main() -> int {
  var t: int = 0;
  if (true) { t = 1; }
  if (2 > 3) { t = t + 100; }
  print_int(t);
  return 0;
}
|}
  in
  let m = compile src in
  let fn0 = Option.get (Ir.Func.find_func m "main") in
  let reachable fnx =
    let cfg = Cfg.Graph.build fnx in
    List.length (Cfg.Graph.reachable_blocks cfg)
  in
  let before = reachable fn0 in
  Opt.Pipeline.run_module m;
  let after = reachable (Option.get (Ir.Func.find_func m "main")) in
  Alcotest.(check bool)
    (Printf.sprintf "reachable blocks shrink (%d -> %d)" before after)
    true (after < before);
  Alcotest.(check string) "output preserved" "1"
    (String.trim (run_module m).Interp.Machine.output)

let test_licm_hoists () =
  let src =
    {|
fn main() -> int {
  var n: int = 200;
  var k: int = 37;
  var acc: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    var inv: int = k * k + 5;   // loop-invariant work
    acc = acc ^ (inv + i);
  }
  print_int(acc);
  return 0;
}
|}
  in
  let m = compile src in
  let moved = Opt.Licm.run_module m in
  Alcotest.(check bool) (Printf.sprintf "hoisted %d instrs" moved) true (moved >= 2);
  Alcotest.(check int) "ssa still valid" 0 (List.length (Cfg.Ssa_check.check_module m));
  let c1, o1 = (fun out -> (out.Interp.Machine.clock, String.trim out.Interp.Machine.output)) (run_module m) in
  let c0, o0 = plain_clock src in
  Alcotest.(check string) "output preserved" o0 o1;
  Alcotest.(check bool)
    (Printf.sprintf "cheaper (%d -> %d)" c0 c1)
    true (c1 < c0)

let test_licm_keeps_traps_in_place () =
  (* a division inside a loop that never executes must not be hoisted into
     the (always executed) preheader *)
  let src =
    {|
fn main() -> int {
  var zero: int = 0;
  var acc: int = 0;
  for (var i: int = 0; i < 10; i = i + 1) {
    if (i > 100) { acc = acc + 5 / zero; }
  }
  print_int(acc);
  return 0;
}
|}
  in
  let m = compile src in
  ignore (Opt.Licm.run_module m);
  Alcotest.(check string) "no spurious trap" "0"
    (String.trim (run_module m).Interp.Machine.output)

(* The decisive test: on every suite benchmark, the optimized module produces
   the same output with no more instructions, and still passes both
   verifiers and the downstream limit study. *)
let test_pipeline_preserves_suite_semantics () =
  List.iter
    (fun (b : Suites.Suite.benchmark) ->
      let m0 = compile b.Suites.Suite.source in
      let out0 =
        Interp.Machine.run_main (Interp.Machine.create ~fuel:100_000_000 m0)
      in
      let m1 = compile b.Suites.Suite.source in
      Opt.Pipeline.run_module m1;
      Alcotest.(check int)
        (b.Suites.Suite.name ^ " ssa valid after opt")
        0
        (List.length (Cfg.Ssa_check.check_module m1));
      let out1 =
        Interp.Machine.run_main (Interp.Machine.create ~fuel:100_000_000 m1)
      in
      Alcotest.(check string)
        (b.Suites.Suite.name ^ " output preserved")
        out0.Interp.Machine.output out1.Interp.Machine.output;
      Alcotest.(check bool)
        (Printf.sprintf "%s cost not increased (%d -> %d)" b.Suites.Suite.name
           out0.Interp.Machine.clock out1.Interp.Machine.clock)
        true
        (out1.Interp.Machine.clock <= out0.Interp.Machine.clock))
    (Suites.Suite.all ())

let test_optimized_analysis_runs () =
  let b = Option.get (Suites.Suite.find "456_hmmer") in
  let a = Loopa.Driver.analyze_source ~optimize:true b.Suites.Suite.source in
  let r = Loopa.Driver.evaluate a Loopa.Config.best_helix in
  Alcotest.(check bool) "speedup sane" true (r.Loopa.Evaluate.speedup >= 1.0)

(* Property: random arithmetic statements fold to the same value the
   interpreter computes unoptimized. *)
let gen_expr_src =
  QCheck.Gen.(
    let rec expr n =
      if n = 0 then map string_of_int (int_range (-50) 50)
      else
        let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
        let* l = expr (n / 2) in
        let+ r = expr (n / 2) in
        Printf.sprintf "(%s %s %s)" l op r
    in
    expr 4)

let prop_fold_agrees_with_interp =
  QCheck.Test.make ~name:"constant folding agrees with the interpreter" ~count:100
    (QCheck.make gen_expr_src) (fun e ->
      let src = Printf.sprintf "fn main() -> int { print_int(%s); return 0; }" e in
      let _, o0 = plain_clock src in
      let _, o1 = optimized_clock src in
      o0 = o1)

let () =
  Alcotest.run "opt"
    [
      ( "constfold",
        [
          Alcotest.test_case "arithmetic" `Quick test_constfold_arithmetic;
          Alcotest.test_case "identities" `Quick test_constfold_identities;
          Alcotest.test_case "branch folding" `Quick test_branch_folding;
          Alcotest.test_case "div-by-zero survives" `Quick test_div_by_zero_not_folded;
          QCheck_alcotest.to_alcotest prop_fold_agrees_with_interp;
        ] );
      ( "dce",
        [
          Alcotest.test_case "dead chain" `Quick test_dce_removes_dead_chain;
          Alcotest.test_case "effects kept" `Quick test_dce_keeps_effects;
        ] );
      ( "cfg",
        [ Alcotest.test_case "merges straight-line" `Quick test_simplify_cfg_merges ] );
      ( "licm",
        [
          Alcotest.test_case "hoists invariants" `Quick test_licm_hoists;
          Alcotest.test_case "traps stay conditional" `Quick test_licm_keeps_traps_in_place;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "suite semantics preserved" `Slow
            test_pipeline_preserves_suite_semantics;
          Alcotest.test_case "optimized analysis" `Quick test_optimized_analysis_runs;
        ] );
    ]
