(* Front-end tests: lexer, parser (precedence via evaluated results), semantic
   errors, and lowering correctness checked end-to-end by running programs. *)

let run src =
  let m = Frontend.compile_exn src in
  let out = Interp.Machine.run_main (Interp.Machine.create m) in
  String.trim out.Interp.Machine.output

let expect_output name want src = Alcotest.(check string) name want (run src)

let expect_compile_error name fragment src =
  match Frontend.compile src with
  | Ok _ -> Alcotest.failf "%s: expected a compile error" name
  | Error e ->
      Alcotest.(check bool)
        (name ^ " mentions " ^ fragment)
        true
        (Astring_contains.contains (Frontend.error_to_string e) fragment)

(* ---- lexer ---- *)

let test_lexer_tokens () =
  let toks = List.map fst (Frontend.Lexer.tokenize "fn x != <= << && 1.5e2 42 // c\n") in
  Alcotest.(check bool) "fn" true (List.mem Frontend.Lexer.Kfn toks);
  Alcotest.(check bool) "ident" true (List.mem (Frontend.Lexer.Tident "x") toks);
  Alcotest.(check bool) "neq" true (List.mem Frontend.Lexer.Neq toks);
  Alcotest.(check bool) "le" true (List.mem Frontend.Lexer.Le toks);
  Alcotest.(check bool) "shl" true (List.mem Frontend.Lexer.Shl toks);
  Alcotest.(check bool) "andand" true (List.mem Frontend.Lexer.Ampamp toks);
  Alcotest.(check bool) "float lit" true (List.mem (Frontend.Lexer.Tfloat_lit 150.0) toks);
  Alcotest.(check bool) "int lit" true (List.mem (Frontend.Lexer.Tint_lit 42L) toks);
  Alcotest.(check bool) "eof last" true (List.rev toks |> List.hd = Frontend.Lexer.Eof)

let test_lexer_comments () =
  let toks = Frontend.Lexer.tokenize "/* a /* nope */ 1 // rest\n 2" in
  let ints = List.filter_map (function Frontend.Lexer.Tint_lit i, _ -> Some i | _ -> None) toks in
  Alcotest.(check int) "comments stripped" 2 (List.length ints)

let test_lexer_errors () =
  Alcotest.check_raises "bad char"
    (Frontend.Lexer.Lex_error ("unexpected character '#'", { Frontend.Ast.line = 1; col = 1 }))
    (fun () -> ignore (Frontend.Lexer.tokenize "#"));
  (match Frontend.Lexer.tokenize "/* open" with
  | exception Frontend.Lexer.Lex_error (msg, _) ->
      Alcotest.(check bool) "unterminated comment" true
        (Astring_contains.contains msg "unterminated")
  | _ -> Alcotest.fail "expected lex error")

(* ---- parser & precedence (validated through evaluation) ---- *)

let main_print_int expr =
  Printf.sprintf "fn main() -> int { print_int(%s); return 0; }" expr

let test_precedence () =
  expect_output "mul before add" "14" (main_print_int "2 + 3 * 4");
  expect_output "parens" "20" (main_print_int "(2 + 3) * 4");
  expect_output "shift vs add" "32" (main_print_int "1 << 4 + 1");
  expect_output "cmp vs arith binds" "1"
    "fn main() -> int { if (2 + 3 < 6) { print_int(1); } else { print_int(0); } return 0; }";
  expect_output "unary minus" "-6" (main_print_int "-2 * 3");
  expect_output "mod" "2" (main_print_int "17 % 5");
  expect_output "bit ops" "6" (main_print_int "(12 & 7) ^ 2");
  expect_output "nested index"
    "7"
    {|
fn main() -> int {
  var a: int[] = new int[4];
  var b: int[] = new int[4];
  a[2] = 3; b[3] = 7;
  print_int(b[a[2]]);
  return 0;
}
|}

let test_parse_errors () =
  expect_compile_error "missing semi" "expected" "fn main() -> int { return 0 }";
  expect_compile_error "bad toplevel" "top level" "var x: int = 1;";
  expect_compile_error "unclosed paren" "expected" "fn main() -> int { return (1; }";
  expect_compile_error "bad assignment target" "assignment target"
    "fn main() -> int { 1 + 2 = 3; return 0; }"

(* ---- sema ---- *)

let test_sema_errors () =
  expect_compile_error "undefined var" "undefined variable"
    "fn main() -> int { return x; }";
  expect_compile_error "type mismatch" "type"
    "fn main() -> int { var x: int = 1.5; return x; }";
  expect_compile_error "bad condition" "must be bool"
    "fn main() -> int { if (1) { } return 0; }";
  expect_compile_error "break outside loop" "outside"
    "fn main() -> int { break; return 0; }";
  expect_compile_error "undefined function" "undefined function"
    "fn main() -> int { return foo(); }";
  expect_compile_error "arity" "argument"
    "fn f(x: int) -> int { return x; } fn main() -> int { return f(); }";
  expect_compile_error "void in expression" "void"
    "fn main() -> int { return 1 + srand(3); }";
  expect_compile_error "redeclaration" "redeclaration"
    "fn main() -> int { var x: int = 1; var x: int = 2; return x; }";
  expect_compile_error "duplicate function" "duplicate"
    "fn f() -> int { return 1; } fn f() -> int { return 2; } fn main() -> int { return 0; }";
  expect_compile_error "shadowing builtin" "shadows"
    "fn sqrt(x: int) -> int { return x; } fn main() -> int { return 0; }";
  expect_compile_error "return mismatch" "returning"
    "fn main() -> int { return 1.5; }";
  expect_compile_error "index non-array" "cannot index"
    "fn main() -> int { var x: int = 1; return x[0]; }";
  expect_compile_error "non-literal global" "literal"
    "global g: int = 1 + 2; fn main() -> int { return g; }";
  expect_compile_error "mixed arithmetic" "matching"
    "fn main() -> int { var x: float = 1.0 + 1; return 0; }"

(* ---- lowering / end-to-end semantics ---- *)

let test_factorial () =
  expect_output "factorial" "120"
    {|
fn fact(n: int) -> int {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
fn main() -> int { print_int(fact(5)); return 0; }
|}

let test_fib_loop () =
  expect_output "fib" "55"
    {|
fn main() -> int {
  var a: int = 0;
  var b: int = 1;
  for (var i: int = 0; i < 10; i = i + 1) {
    var t: int = a + b;
    a = b;
    b = t;
  }
  print_int(a);
  return 0;
}
|}

let test_break_continue () =
  expect_output "break/continue" "12"
    {|
fn main() -> int {
  var t: int = 0;
  for (var i: int = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 7) { break; }
    t = t + i;   // 1 + 3 + 5 + 7 = 16? no: i>7 breaks at 9, so 1+3+5+7=16
  }
  // recompute differently to keep the checksum honest
  var u: int = 0;
  var j: int = 0;
  while (true) {
    j = j + 1;
    if (j >= 5) { break; }
    if (j == 2) { continue; }
    u = u + j;  // 1 + 3 + 4 = 8
  }
  print_int(t - u + 4);
  return 0;
}
|}

let test_short_circuit_effects () =
  (* the right-hand side must not evaluate when short-circuited *)
  expect_output "short circuit" "1"
    {|
global hits: int = 0;
fn bump() -> bool { hits = hits + 1; return true; }
fn main() -> int {
  var c: bool = false && bump();
  var d: bool = true || bump();
  if (c || !d) { print_int(99); } else { print_int(hits + 1); }
  return 0;
}
|}

let test_globals () =
  expect_output "globals" "30"
    {|
global counter: int = 10;
global arr: int[];
fn bump(by: int) { counter = counter + by; }
fn main() -> int {
  arr = new int[4];
  arr[0] = 5;
  bump(arr[0]);
  bump(15);
  print_int(counter);
  return 0;
}
|}

let test_float_semantics () =
  expect_output "float arithmetic" "2.5"
    {|
fn main() -> int {
  var x: float = 10.0;
  print_float(x / 4.0);
  return 0;
}
|};
  expect_output "conversions" "3"
    {|
fn main() -> int {
  print_int(int(3.99));
  return 0;
}
|};
  expect_output "float to int negative" "-3"
    {|
fn main() -> int {
  print_int(int(-3.99));
  return 0;
}
|}

let test_intrinsics () =
  expect_output "imin/imax/iabs" "394"
    {|
fn main() -> int {
  print_int(imin(3, 9) * 100 + imax(3, 9) * 10 + iabs(-4));
  return 0;
}
|};
  expect_output "fminv/fmaxv/fabs" "1.5"
    {|
fn main() -> int {
  print_float(fminv(fmaxv(1.5, 1.0), fabs(-2.0)));
  return 0;
}
|}

let test_len_and_new () =
  expect_output "len" "120"
    {|
fn main() -> int {
  var a: float[] = new float[12];
  print_int(len(a) * 10 + int(a[5]));  // a[5] reads zero-initialized storage
  return 0;
}
|}

let test_bool_ops () =
  expect_output "bool equality" "1"
    {|
fn main() -> int {
  var a: bool = 3 < 4;
  var b: bool = !(4 < 3);
  if (a == b && a != false) { print_int(1); } else { print_int(0); }
  return 0;
}
|}

let test_zero_default_var () =
  expect_output "uninitialized is zero" "0"
    {|
fn main() -> int {
  var x: int;
  print_int(x);
  return 0;
}
|}

let test_nested_function_calls () =
  expect_output "call graph" "26"
    {|
fn double_it(x: int) -> int { return x * 2; }
fn apply_twice(x: int) -> int { return double_it(double_it(x)) + 2; }
fn main() -> int { print_int(apply_twice(6)); return 0; }
|}

(* Every compiled program must pass both verifiers; exercised on a grab bag of
   tricky shapes (deep nesting, early returns, dead code after return). *)
let test_ssa_validity_corpus () =
  let corpus =
    [
      "fn main() -> int { return 0; print_int(1); }";
      {|
fn main() -> int {
  var t: int = 0;
  for (var i: int = 0; i < 4; i = i + 1) {
    for (var j: int = 0; j < 4; j = j + 1) {
      if (i == j) { continue; }
      while (t < i * j) { t = t + 1; }
    }
  }
  print_int(t);
  return 0;
}
|};
      {|
fn f(x: int) -> int {
  if (x > 0) { return 1; }
  if (x < 0) { return -1; }
  return 0;
}
fn main() -> int { print_int(f(5) + f(-5) + f(0)); return 0; }
|};
      {|
fn main() -> int {
  var x: int = 0;
  while (true) {
    x = x + 1;
    if (x > 3) { break; }
  }
  print_int(x);
  return 0;
}
|};
    ]
  in
  List.iter
    (fun src ->
      let m = Frontend.compile_exn src in
      Alcotest.(check int) "structural ok" 0 (List.length (Ir.Verifier.verify_module m));
      Alcotest.(check int) "ssa ok" 0 (List.length (Cfg.Ssa_check.check_module m)))
    corpus

(* ---- located diagnostics ---- *)

let expect_error_at name kind line col src =
  match Frontend.compile src with
  | Ok _ -> Alcotest.failf "%s: expected a compile error" name
  | Error e ->
      Alcotest.(check string)
        (name ^ " kind")
        kind
        (Frontend.error_kind_name e.Frontend.kind);
      Alcotest.(check string)
        (name ^ " position")
        (Printf.sprintf "%d:%d" line col)
        (Printf.sprintf "%d:%d" e.Frontend.pos.Frontend.Ast.line
           e.Frontend.pos.Frontend.Ast.col)

let test_error_locations () =
  expect_error_at "lex error" "lex" 2 3 "fn main() -> int {\n  # return 0;\n}";
  expect_error_at "syntax error" "syntax" 2 16
    "fn main() -> int {\n  var a: int = ;\n  return 0;\n}";
  expect_error_at "type error" "type" 3 10
    "fn main() -> int {\n  var a: int = 1;\n  return x;\n}";
  expect_error_at "type error on later line" "type" 4 3
    "fn main() -> int {\n  var ok: int = 1;\n  var b: bool = true;\n  if (1) { }\n  return ok;\n}"

(* Sema rejects non-literal global initializers, so the lowering-stage
   diagnostic only fires on a hand-built (unchecked) AST — which is exactly
   the contract: an internal invariant that reports a source location
   instead of crashing. *)
let test_lowering_error_located () =
  let open Frontend.Ast in
  let bad_init =
    mk_expr ~pos:{ line = 7; col = 5 }
      (Ebin (Badd, mk_expr (Eint 1L), mk_expr (Eint 2L)))
  in
  let prog =
    {
      globals =
        [
          {
            gname = "g";
            gty = Tint;
            ginit = Some bad_init;
            gpos = { line = 7; col = 1 };
          };
        ];
      funcs =
        [
          {
            fname = "main";
            params = [];
            ret = Some Tint;
            body = [ mk_stmt (Sreturn (Some (mk_expr (Eint 0L)))) ];
            fpos = no_pos;
          };
        ];
    }
  in
  match Frontend.Lower.lower_program prog with
  | _ -> Alcotest.fail "expected a lowering error"
  | exception Frontend.Lower.Lower_error (msg, pos) ->
      Alcotest.(check bool)
        "message names the global" true
        (Astring_contains.contains msg "non-literal");
      Alcotest.(check string) "position points at the initializer" "7:5"
        (Printf.sprintf "%d:%d" pos.line pos.col)

(* ---- AST pretty-printer round trip ---- *)

(* print . parse . print must be a fixpoint: the first print normalizes
   formatting, after which printing is the identity on what parses. Checked
   on every registered benchmark, so each new suite program exercises the
   printer automatically. *)
let test_pp_roundtrip_benchmarks () =
  List.iter
    (fun (b : Suites.Suite.benchmark) ->
      let p1 = Frontend.parse_and_check_exn b.Suites.Suite.source in
      let s1 = Frontend.Pp_ast.program_to_string p1 in
      let p2 =
        try Frontend.parse_and_check_exn s1
        with Frontend.Compile_error e ->
          Alcotest.failf "%s: printed program does not compile: %s\n%s"
            b.Suites.Suite.name (Frontend.error_to_string e) s1
      in
      let s2 = Frontend.Pp_ast.program_to_string p2 in
      Alcotest.(check string) (b.Suites.Suite.name ^ " round-trips") s1 s2)
    (Suites.Suite.all ())

(* The printed program must also mean the same thing: equal output and cost
   on a spot-checked benchmark (full semantic equality over the registry is
   the interpreter suite's job). *)
let test_pp_preserves_semantics () =
  let check_src src =
    let out0 = run src in
    let printed =
      Frontend.Pp_ast.program_to_string (Frontend.parse_and_check_exn src)
    in
    Alcotest.(check string) "printed program behaves identically" out0 (run printed)
  in
  check_src
    {|
global counter: int = 10;
fn bump(by: int) { counter = counter + by; }
fn main() -> int {
  var acc: float = 0.5;
  for (var i: int = 0; i < 10; i = i + 1) {
    if (i % 3 == 0 && i != 6 || i == 1) { bump(i); } else { bump(-1); }
    acc = acc + float(i) * 1.5;
  }
  var a: int[] = new int[8];
  a[counter & 7] = -42;
  while (counter > 0) { counter = counter - (1 << 1) + 1; }
  print_int(counter + a[2] + int(acc) + len(a));
  return 0;
}
|}

let test_pp_precedence_edge_cases () =
  (* shapes where a naive printer would drop or misplace parentheses *)
  List.iter
    (fun expr ->
      let src = main_print_int expr in
      let printed =
        Frontend.Pp_ast.program_to_string (Frontend.parse_and_check_exn src)
      in
      Alcotest.(check string) (expr ^ " same value") (run src) (run printed))
    [
      "2 + 3 * 4";
      "(2 + 3) * 4";
      "1 << 4 + 1";
      "(1 << 4) + 1";
      "10 - (3 - 2)";
      "10 - 3 - 2";
      "100 / (5 / 2)";
      "-(2 + 3)";
      "- - 5";
      "(12 & 7) ^ 2 | 1";
      "12 & (7 ^ 2)";
      "-2 * 3";
    ]

(* Property: random arithmetic expressions evaluate identically in Looplang
   and OCaml (Int64 semantics). *)
let gen_arith =
  let open QCheck.Gen in
  fix
    (fun self n ->
      if n = 0 then map (fun i -> (Printf.sprintf "%d" i, Int64.of_int i)) (int_range (-100) 100)
      else
        let* op = oneofl [ "+"; "-"; "*" ] in
        let* l, lv = self (n / 2) in
        let+ r, rv = self (n / 2) in
        let v =
          match op with
          | "+" -> Int64.add lv rv
          | "-" -> Int64.sub lv rv
          | _ -> Int64.mul lv rv
        in
        (Printf.sprintf "(%s %s %s)" l op r, v))
    4

let prop_arith_agrees =
  QCheck.Test.make ~name:"looplang arithmetic = int64 arithmetic" ~count:100
    (QCheck.make gen_arith) (fun (expr, want) ->
      run (main_print_int expr) = Int64.to_string want)

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ("sema", [ Alcotest.test_case "errors" `Quick test_sema_errors ]);
      ( "diagnostics",
        [
          Alcotest.test_case "error locations" `Quick test_error_locations;
          Alcotest.test_case "lowering error located" `Quick
            test_lowering_error_located;
        ] );
      ( "pretty-printer",
        [
          Alcotest.test_case "benchmark round-trips" `Quick
            test_pp_roundtrip_benchmarks;
          Alcotest.test_case "preserves semantics" `Quick
            test_pp_preserves_semantics;
          Alcotest.test_case "precedence edge cases" `Quick
            test_pp_precedence_edge_cases;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "factorial (recursion)" `Quick test_factorial;
          Alcotest.test_case "fib (loop)" `Quick test_fib_loop;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "short-circuit effects" `Quick test_short_circuit_effects;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "floats" `Quick test_float_semantics;
          Alcotest.test_case "intrinsics" `Quick test_intrinsics;
          Alcotest.test_case "len/new" `Quick test_len_and_new;
          Alcotest.test_case "bool ops" `Quick test_bool_ops;
          Alcotest.test_case "zero default" `Quick test_zero_default_var;
          Alcotest.test_case "nested calls" `Quick test_nested_function_calls;
          Alcotest.test_case "ssa corpus" `Quick test_ssa_validity_corpus;
          QCheck_alcotest.to_alcotest prop_arith_agrees;
        ] );
    ]
