(* Suite-level integration tests: every benchmark compiles to verified SSA,
   passes the dominance check, runs to completion, reproduces its golden
   checksum, and contains loops the analysis can see. *)

(* Golden outputs, locked from a reference run; any front-end, interpreter or
   benchmark change that alters semantics trips these. *)
let golden =
  [
    ("164_gzip", "24500064");
    ("175_vpr", "-73600");
    ("176_gcc", "-532");
    ("181_mcf", "9624");
    ("186_crafty", "857872");
    ("197_parser", "9999604");
    ("252_eon", "716900");
    ("253_perlbmk", "1035347");
    ("254_gap", "3000498500");
    ("255_vortex", "191021428");
    ("256_bzip2", "26611");
    ("300_twolf", "83408");
    ("400_perlbench", "457210");
    ("401_bzip2", "1088");
    ("403_gcc", "60538");
    ("429_mcf", "210100");
    ("445_gobmk", "809");
    ("456_hmmer", "620");
    ("458_sjeng", "2560000");
    ("462_libquantum", "142033917");
    ("464_h264ref", "168533");
    ("471_omnetpp", "160000990");
    ("473_astar", "1000198");
    ("483_xalancbmk", "37621");
    ("168_wupwise", "0.000332418");
    ("171_swim", "184127");
    ("172_mgrid", "2.37856");
    ("173_applu", "305.945");
    ("177_mesa", "-1448.21");
    ("178_galgel", "5212.29");
    ("179_art", "641.487");
    ("183_equake", "263.43");
    ("188_ammp", "1194.51");
    ("189_lucas", "146822");
    ("410_bwaves", "726.19");
    ("433_milc", "-41.2865");
    ("434_zeusmp", "5596.4");
    ("435_gromacs", "1770.3");
    ("437_leslie3d", "4686.15");
    ("444_namd", "9508.09");
    ("447_dealII", "1500");
    ("450_soplex", "22.1124");
    ("453_povray", "487.014");
    ("470_lbm", "1527.15");
    ("482_sphinx", "-2.46502");
    ("a2time01", "54426.8");
    ("aifftr01", "87552");
    ("aifirf01", "179.482");
    ("basefp01", "686.512");
    ("bitmnp01", "16452");
    ("idctrn01", "-514.156");
    ("matrix01", "30680.9");
    ("pntrch01", "21504");
    ("puwmod01", "48.2025");
    ("rspeed01", "140.353");
    ("tblook01", "317052");
    ("ttsprk01", "438184");
    ("viterb00", "81");
  ]

let test_registry () =
  let benches = Suites.Suite.all () in
  Alcotest.(check int) "benchmark count" (List.length golden) (List.length benches);
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (name ^ " registered") true
        (Suites.Suite.find name <> None))
    golden;
  let names = Suites.Suite.names () in
  Alcotest.(check int)
    "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_categories () =
  let count cat = List.length (Suites.Suite.by_category cat) in
  Alcotest.(check int) "int2000 size" 12 (count Suites.Suite.Int2000);
  Alcotest.(check int) "int2006 size" 12 (count Suites.Suite.Int2006);
  Alcotest.(check int) "fp2000 size" 10 (count Suites.Suite.Fp2000);
  Alcotest.(check int) "fp2006 size" 11 (count Suites.Suite.Fp2006);
  Alcotest.(check int) "eembc size" 13 (count Suites.Suite.Eembc);
  Alcotest.(check bool) "eembc numeric" true (Suites.Suite.is_numeric Suites.Suite.Eembc);
  Alcotest.(check bool)
    "int2000 non-numeric" false
    (Suites.Suite.is_numeric Suites.Suite.Int2000)

let compile_bench name =
  match Suites.Suite.find name with
  | None -> Alcotest.failf "%s not found" name
  | Some b -> Frontend.compile_exn b.Suites.Suite.source

let run_case (name, want) =
  Alcotest.test_case name `Quick (fun () ->
      let b = Option.get (Suites.Suite.find name) in
      (* verified SSA *)
      let m = compile_bench name in
      Alcotest.(check (list string))
        "ssa clean" []
        (List.map Cfg.Ssa_check.error_to_string (Cfg.Ssa_check.check_module m));
      (* canonicalization leaves every loop in loop-simplify form *)
      Cfg.Loop_simplify.run_module m;
      List.iter
        (fun fn ->
          let cfg = Cfg.Graph.build fn in
          let dom = Cfg.Dom.compute cfg in
          let li = Cfg.Loopinfo.compute cfg dom in
          List.iter
            (fun (l : Cfg.Loopinfo.loop) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s loop bb%d canonical" name fn.Ir.Func.fname
                   l.Cfg.Loopinfo.header)
                true
                (Cfg.Loopinfo.is_canonical li l.Cfg.Loopinfo.lid))
            (Cfg.Loopinfo.loops li))
        m.Ir.Func.funcs;
      (* golden output *)
      let out = Loopa.Driver.run_source ~fuel:100_000_000 b.Suites.Suite.source in
      Alcotest.(check string) "checksum" want (String.trim out.Interp.Machine.output);
      Alcotest.(check bool) "nonzero cost" true (out.Interp.Machine.clock > 1000))

let test_every_benchmark_has_loops () =
  List.iter
    (fun (b : Suites.Suite.benchmark) ->
      let m = Frontend.compile_exn b.Suites.Suite.source in
      let total_loops =
        List.fold_left
          (fun acc fn ->
            let cfg = Cfg.Graph.build fn in
            let dom = Cfg.Dom.compute cfg in
            let li = Cfg.Loopinfo.compute cfg dom in
            acc + Cfg.Loopinfo.num_loops li)
          0 m.Ir.Func.funcs
      in
      Alcotest.(check bool)
        (b.Suites.Suite.name ^ " has loops")
        true (total_loops >= 1))
    (Suites.Suite.all ())

(* A full instrumented analysis on one representative per class. *)
let test_analysis_smoke () =
  List.iter
    (fun name ->
      let b = Option.get (Suites.Suite.find name) in
      let a = Loopa.Driver.analyze_source ~fuel:100_000_000 b.Suites.Suite.source in
      let r = Loopa.Driver.evaluate a Loopa.Config.best_helix in
      Alcotest.(check bool) (name ^ " speedup >= 1") true (r.Loopa.Evaluate.speedup >= 1.0);
      Alcotest.(check bool)
        (name ^ " coverage in range") true
        (r.Loopa.Evaluate.coverage_pct >= 0.0 && r.Loopa.Evaluate.coverage_pct <= 100.0))
    [ "181_mcf"; "179_art"; "pntrch01" ]

let () =
  Alcotest.run "suites"
    [
      ( "registry",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "categories" `Quick test_categories;
          Alcotest.test_case "loops present" `Quick test_every_benchmark_has_loops;
          Alcotest.test_case "analysis smoke" `Slow test_analysis_smoke;
        ] );
      ("golden", List.map run_case golden);
    ]
