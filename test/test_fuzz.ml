(* Differential fuzzing: generate random, type-correct, terminating Looplang
   programs and check the invariants that hold for *every* program:
   - the front-end produces verifier- and dominance-clean SSA;
   - the optimization pipeline preserves output and never increases cost;
   - the limit study runs and reports speedups >= 1 with sane coverage;
   - no statically Proven_doall loop exhibits a dynamic memory RAW
     (Loopa.Crosscheck, on an unpruned profile).

   Programs use a fixed skeleton: a handful of int scalars, one 16-element
   array (indices are masked), bounded for-loops, if/else, and a final
   checksum print — so every generated program terminates and stays in
   bounds by construction. *)

let var_names = [| "v0"; "v1"; "v2"; "v3" |]

type gctx = { buf : Buffer.t; mutable indent : int; mutable fresh : int }

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (ctx.indent * 2) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

(* Random int expression over the scalar variables and the array. *)
let rec gen_expr st depth =
  let open QCheck.Gen in
  if depth = 0 then
    (match generate1 ~rand:st (int_range 0 3) with
    | 0 -> string_of_int (generate1 ~rand:st (int_range (-9) 9))
    | 1 | 2 -> var_names.(generate1 ~rand:st (int_range 0 3))
    | _ -> Printf.sprintf "arr[(%s) & 15]" var_names.(generate1 ~rand:st (int_range 0 3)))
  else
    let op = generate1 ~rand:st (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ]) in
    Printf.sprintf "(%s %s %s)" (gen_expr st (depth - 1)) op (gen_expr st (depth - 1))

let gen_cond st = Printf.sprintf "(%s) < (%s)" (gen_expr st 1) (gen_expr st 1)

let rec gen_stmt st ctx depth =
  let open QCheck.Gen in
  match generate1 ~rand:st (int_range 0 5) with
  | 0 | 1 ->
      line ctx "%s = %s;" var_names.(generate1 ~rand:st (int_range 0 3)) (gen_expr st 2)
  | 2 -> line ctx "arr[(%s) & 15] = %s;" (gen_expr st 1) (gen_expr st 2)
  | 3 when depth > 0 ->
      line ctx "if (%s) {" (gen_cond st);
      ctx.indent <- ctx.indent + 1;
      gen_block st ctx (depth - 1);
      ctx.indent <- ctx.indent - 1;
      if generate1 ~rand:st bool then begin
        line ctx "} else {";
        ctx.indent <- ctx.indent + 1;
        gen_block st ctx (depth - 1);
        ctx.indent <- ctx.indent - 1
      end;
      line ctx "}"
  | 4 when depth > 0 ->
      let iv = Printf.sprintf "it%d" ctx.fresh in
      ctx.fresh <- ctx.fresh + 1;
      let trip = generate1 ~rand:st (int_range 2 12) in
      line ctx "for (var %s: int = 0; %s < %d; %s = %s + 1) {" iv iv trip iv iv;
      ctx.indent <- ctx.indent + 1;
      gen_block st ctx (depth - 1);
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
  | _ -> line ctx "%s = %s + 1;" var_names.(generate1 ~rand:st (int_range 0 3))
           var_names.(generate1 ~rand:st (int_range 0 3))

and gen_block st ctx depth =
  let n = QCheck.Gen.generate1 ~rand:st (QCheck.Gen.int_range 1 4) in
  for _ = 1 to n do
    gen_stmt st ctx depth
  done

let gen_program seed : string =
  let st = Random.State.make [| seed |] in
  let ctx = { buf = Buffer.create 512; indent = 0; fresh = 0 } in
  line ctx "fn main() -> int {";
  ctx.indent <- 1;
  line ctx "var arr: int[] = new int[16];";
  Array.iteri (fun i v -> line ctx "var %s: int = %d;" v (i * 3 + 1)) var_names;
  gen_block st ctx 3;
  line ctx "var check: int = v0 ^ v1 ^ v2 ^ v3;";
  line ctx "for (var i: int = 0; i < 16; i = i + 1) { check = check ^ arr[i] ^ i; }";
  line ctx "print_int(check);";
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf

let run m = Interp.Machine.run_main (Interp.Machine.create ~fuel:10_000_000 m)

let check_one seed =
  let src = gen_program seed in
  let fail fmt = Printf.ksprintf (fun m -> Alcotest.failf "seed %d: %s\n%s" seed m src) fmt in
  (* front-end invariants *)
  let m0 =
    match Frontend.compile src with
    | Ok m -> m
    | Error e -> fail "compile error %s" (Frontend.error_to_string e)
  in
  (match Cfg.Ssa_check.check_module m0 with
  | [] -> ()
  | errs -> fail "ssa: %s" (Cfg.Ssa_check.error_to_string (List.hd errs)));
  let out0 = run m0 in
  (* optimization preserves semantics and cost never grows *)
  let m1 = Frontend.compile_exn src in
  Opt.Pipeline.run_module m1;
  let out1 = run m1 in
  if out0.Interp.Machine.output <> out1.Interp.Machine.output then
    fail "optimized output differs: %S vs %S" out0.Interp.Machine.output
      out1.Interp.Machine.output;
  if out1.Interp.Machine.clock > out0.Interp.Machine.clock then
    fail "optimization increased cost %d -> %d" out0.Interp.Machine.clock
      out1.Interp.Machine.clock;
  (* the limit study accepts it; collect unpruned so the soundness
     cross-validator can see every memory event, and with range observation
     on so every header-phi value is checked against its proven interval *)
  let a =
    Loopa.Driver.analyze_source ~fuel:10_000_000 ~static_prune:false
      ~observe_ranges:true src
  in
  (match Loopa.Crosscheck.check a.Loopa.Driver.profile with
  | [] -> ()
  | vs -> fail "unsound static verdict: %s" (Loopa.Crosscheck.violation_to_string (List.hd vs)));
  (match Loopa.Crosscheck.check_ranges a.Loopa.Driver.profile with
  | [] -> ()
  | vs ->
      fail "unsound value range: %s"
        (Loopa.Crosscheck.range_violation_to_string (List.hd vs)));
  List.iter
    (fun cfg ->
      let r = Loopa.Driver.evaluate a cfg in
      if r.Loopa.Evaluate.speedup < 1.0 -. 1e-9 then
        fail "%s speedup %f < 1" (Loopa.Config.name cfg) r.Loopa.Evaluate.speedup;
      if r.Loopa.Evaluate.coverage_pct < -1e-9 || r.Loopa.Evaluate.coverage_pct > 100.0 +. 1e-9
      then fail "coverage out of range: %f" r.Loopa.Evaluate.coverage_pct)
    [
      Loopa.Config.of_string "reduc0-dep0-fn0 DOALL";
      Loopa.Config.of_string "reduc1-dep2-fn2 PDOALL";
      Loopa.Config.best_helix;
    ];
  (* graceful degradation: inject a fuel-out halfway through the same run.
     The truncated prefix must still profile (flagged), evaluate without
     raising, and stay sound under the cross-validator. *)
  let full_clock =
    a.Loopa.Driver.profile.Loopa.Profile.outcome.Interp.Machine.clock
  in
  if full_clock > 8 then begin
    let cut = full_clock / 2 in
    let t =
      Loopa.Driver.analyze_source ~fuel:10_000_000 ~static_prune:false
        ~faults:[ (cut, Interp.Machine.Inject_fuel_out) ]
        src
    in
    if not t.Loopa.Driver.profile.Loopa.Profile.truncated then
      fail "expected a truncated profile when cut at clock %d" cut;
    (match Loopa.Crosscheck.check t.Loopa.Driver.profile with
    | [] -> ()
    | vs ->
        fail "unsound verdict on truncated prefix: %s"
          (Loopa.Crosscheck.violation_to_string (List.hd vs)));
    List.iter
      (fun cfg ->
        let r = Loopa.Driver.evaluate t cfg in
        if not r.Loopa.Evaluate.truncated then
          fail "%s report not flagged truncated" (Loopa.Config.name cfg);
        if r.Loopa.Evaluate.speedup < 1.0 -. 1e-9 then
          fail "truncated %s speedup %f < 1" (Loopa.Config.name cfg)
            r.Loopa.Evaluate.speedup)
      [ Loopa.Config.of_string "reduc1-dep2-fn2 PDOALL"; Loopa.Config.best_helix ]
  end

(* On failure, capture the seed's program as a repro bundle (classified by
   re-running the same invariants through Repro.Pipeline), shrink it, and
   report the minimized program alongside the original failure — so a fuzz
   regression arrives pre-reduced. With FUZZ_REPRO_DIR set (the CI fuzz job
   sets it), the bundle is also written there as an artifact. *)
let fuzz_configs =
  [
    Loopa.Config.of_string "reduc0-dep0-fn0 DOALL";
    Loopa.Config.of_string "reduc1-dep2-fn2 PDOALL";
    Loopa.Config.best_helix;
  ]

let emit_bundle seed (b : Repro.Bundle.t) =
  match Sys.getenv_opt "FUZZ_REPRO_DIR" with
  | None -> None
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (Printf.sprintf "fuzz-seed-%d.repro.json" seed) in
      Repro.Bundle.save path b;
      Some path

let check_one_with_repro seed =
  try check_one seed
  with original ->
    let src = gen_program seed in
    let b =
      Repro.Bundle.make
        ~target:(Printf.sprintf "fuzz-seed-%d" seed)
        ~source:src ~stage:Loopa.Driver.Fuzz ~fingerprint:"fuzz:unclassified"
        ~message:"fuzz invariant violation (not classified by the pipeline)"
        ~configs:fuzz_configs ~fuel:10_000_000 ~static_prune:false
        ~crosscheck:true ~check_invariants:true ()
    in
    (* stamp the bundle with the pipeline's own classification, then reduce *)
    let b = Option.value ~default:b (Repro.Pipeline.classify b) in
    let b, shrunk =
      match Repro.Shrink.shrink ~max_candidates:1_000 b with
      | Ok (sb, _) -> (sb, true)
      | Error _ -> (b, false)
    in
    let saved =
      match emit_bundle seed b with
      | Some path -> Printf.sprintf "\nrepro bundle: %s" path
      | None -> ""
    in
    if shrunk then
      Alcotest.failf "seed %d: %s [%s]%s\nminimized repro:\n%s"
        seed (Printexc.to_string original) b.Repro.Bundle.fingerprint saved
        b.Repro.Bundle.source
    else begin
      (match saved with "" -> () | s -> print_string s);
      raise original
    end

(* Corpus size defaults to 60; the CI acceptance fuzz job sets FUZZ_COUNT=500. *)
let fuzz_count =
  match Sys.getenv_opt "FUZZ_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 60)
  | None -> 60

let test_fuzz_corpus () =
  for seed = 1 to fuzz_count do
    check_one_with_repro seed
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random programs" fuzz_count)
            `Slow test_fuzz_corpus;
        ] );
    ]
